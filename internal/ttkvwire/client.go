package ttkvwire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"ocasta/internal/core"
	"ocasta/internal/ttkv"
)

// Client errors.
var (
	// ErrNotFound is returned for GET/GETAT misses.
	ErrNotFound = errors.New("ttkvwire: not found")
)

// RemoteError is an error the server reported that does not map to one of
// the typed wire errors (ErrReadOnly, ErrNotLeader, ErrRetryable — see
// errors.go).
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "ttkvwire: server: " + e.Msg }

// Client is a connection to a TTKV server. Methods are safe for concurrent
// use; requests are serialized over the single connection. Every operation
// has a context-aware form (SetContext, GetContext, ...); the context-free
// methods are thin wrappers over context.Background(). A context
// cancellation or deadline mid-round-trip poisons the connection (the
// response may be half-read), so the client closes it; subsequent calls
// fail and the caller should redial.
type Client struct {
	mu   chan struct{} // 1-token semaphore guarding conn+buffers
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a TTKV server at addr.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a TTKV server at addr, honoring the context's
// deadline and cancellation for the dial itself.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ttkvwire: dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		mu:   make(chan struct{}, 1),
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
	c.mu <- struct{}{}
	return c
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// armContext applies ctx to the connection for the duration of one
// round trip and returns a disarm func. A context deadline becomes the
// connection deadline; a cancelable context additionally gets a watcher
// goroutine that forces an immediate deadline on cancel, unblocking any
// in-flight read/write. Disarm joins the watcher before clearing the
// deadline, so a late SetDeadline can never outlive the round trip.
func (c *Client) armContext(ctx context.Context) func() {
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		c.conn.SetDeadline(deadline)
	}
	done := ctx.Done()
	if done == nil {
		if !hasDeadline {
			return func() {}
		}
		return func() { c.conn.SetDeadline(time.Time{}) }
	}
	stop := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		select {
		case <-done:
			c.conn.SetDeadline(time.Unix(1, 0)) // in the past: fail I/O now
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-parked
		c.conn.SetDeadline(time.Time{})
	}
}

// transportErr closes the poisoned connection and reports the failure,
// preferring the context's error when the context caused it.
func (c *Client) transportErr(ctx context.Context, phase string, err error) error {
	c.conn.Close()
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("ttkvwire: %s: %w (%v)", phase, cerr, err)
	}
	return fmt.Errorf("ttkvwire: %s: %w", phase, err)
}

// roundTrip sends one command and reads one response.
func (c *Client) roundTrip(ctx context.Context, args ...string) (Value, error) {
	select {
	case <-c.mu:
	case <-ctx.Done():
		return Value{}, ctx.Err()
	}
	defer func() { c.mu <- struct{}{} }()
	disarm := c.armContext(ctx)
	defer disarm()
	if err := writeCommand(c.bw, args...); err != nil {
		return Value{}, c.transportErr(ctx, "send", err)
	}
	v, err := ReadValue(c.br)
	if err != nil {
		return Value{}, c.transportErr(ctx, "recv", err)
	}
	if v.Kind == KindError {
		return Value{}, decodeWireError(v.Str)
	}
	return v, nil
}

// Ping checks liveness.
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// PingContext checks liveness.
func (c *Client) PingContext(ctx context.Context) error {
	v, err := c.roundTrip(ctx, "PING")
	if err != nil {
		return err
	}
	if v.Kind != KindSimple || v.Str != "PONG" {
		return fmt.Errorf("%w: unexpected PING reply %+v", ErrProtocol, v)
	}
	return nil
}

// Set records a write of key at time t.
func (c *Client) Set(key, value string, t time.Time) error {
	return c.SetContext(context.Background(), key, value, t)
}

// SetContext records a write of key at time t.
func (c *Client) SetContext(ctx context.Context, key, value string, t time.Time) error {
	if t.IsZero() {
		return ttkv.ErrZeroTime
	}
	_, err := c.roundTrip(ctx, "SET", key, value, strconv.FormatInt(t.UnixNano(), 10))
	return err
}

// Delete records a deletion of key at time t.
func (c *Client) Delete(key string, t time.Time) error {
	return c.DeleteContext(context.Background(), key, t)
}

// DeleteContext records a deletion of key at time t.
func (c *Client) DeleteContext(ctx context.Context, key string, t time.Time) error {
	if t.IsZero() {
		return ttkv.ErrZeroTime
	}
	_, err := c.roundTrip(ctx, "DEL", key, strconv.FormatInt(t.UnixNano(), 10))
	return err
}

// msetChunk bounds the mutations per MSET command so the request array
// (1 + 3 per mutation) stays far below the protocol's maxArrayLen no
// matter how large the caller's batch is.
const msetChunk = 4096

// MSet records a batch of writes (deletes in the batch are rejected; use
// a Pipeline to mix operations). The server applies each chunk in order
// with its store's batch API; batches are sent in chunks of msetChunk
// mutations, so an error mid-way can leave earlier chunks applied — a
// *ErrPartialApply error reports exactly how many mutations of the
// original batch took effect.
func (c *Client) MSet(muts []ttkv.Mutation) error {
	return c.MSetContext(context.Background(), muts)
}

// MSetContext records a batch of writes; see MSet.
func (c *Client) MSetContext(ctx context.Context, muts []ttkv.Mutation) error {
	for i := range muts {
		if muts[i].Delete {
			return fmt.Errorf("ttkvwire: MSet cannot carry deletes (key %q)", muts[i].Key)
		}
		// A zero time would serialize as its raw UnixNano sentinel and
		// arrive server-side as a bogus non-zero timestamp, silently
		// bypassing the store's ErrZeroTime validation.
		if muts[i].Time.IsZero() {
			return ttkv.ErrZeroTime
		}
	}
	for start := 0; start < len(muts); start += msetChunk {
		chunk := muts[start:min(start+msetChunk, len(muts))]
		args := make([]string, 0, 1+3*len(chunk))
		args = append(args, "MSET")
		for i := range chunk {
			args = append(args, chunk[i].Key, chunk[i].Value, strconv.FormatInt(chunk[i].Time.UnixNano(), 10))
		}
		v, err := c.roundTrip(ctx, args...)
		if err != nil {
			// A server-reported partial apply counts this chunk's applied
			// prefix; fold in the chunks already acknowledged so Applied
			// indexes the caller's batch, not the failing chunk.
			var partial *ErrPartialApply
			if errors.As(err, &partial) {
				return &ErrPartialApply{Applied: start + partial.Applied, Msg: partial.Msg}
			}
			if start > 0 {
				// The failing chunk reported no partial count, but earlier
				// chunks are already durable — still a partial apply.
				return &ErrPartialApply{Applied: start, Msg: err.Error()}
			}
			return err
		}
		if v.Kind != KindInt || v.Int != int64(len(chunk)) {
			return fmt.Errorf("%w: unexpected MSET reply %+v", ErrProtocol, v)
		}
	}
	return nil
}

// Pipeline returns an empty command pipeline on this connection. Queue
// mutations with Set/Delete, then Flush once: all commands go out in a
// single network write and the responses are read back in order, so N
// mutations cost one round trip instead of N.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Pipeline batches mutation commands on one connection. It is not safe
// for concurrent use; each goroutine should build its own.
type Pipeline struct {
	c    *Client
	cmds [][]string
	err  error // first queue-time validation error, reported by Flush
}

// Set queues a write of key at time t.
func (p *Pipeline) Set(key, value string, t time.Time) {
	if t.IsZero() {
		p.fail()
		return
	}
	p.cmds = append(p.cmds, []string{"SET", key, value, strconv.FormatInt(t.UnixNano(), 10)})
}

// Delete queues a deletion of key at time t.
func (p *Pipeline) Delete(key string, t time.Time) {
	if t.IsZero() {
		p.fail()
		return
	}
	p.cmds = append(p.cmds, []string{"DEL", key, strconv.FormatInt(t.UnixNano(), 10)})
}

// fail records a zero-time queue error: serialized as raw UnixNano it
// would reach the server as a bogus non-zero timestamp, dodging the
// store's validation.
func (p *Pipeline) fail() {
	if p.err == nil {
		p.err = ttkv.ErrZeroTime
	}
}

// Len reports how many commands are queued.
func (p *Pipeline) Len() int { return len(p.cmds) }

// pipelineChunk bounds how many commands a Flush keeps in flight before
// draining their responses. Without the bound, a huge pipeline could fill
// both sockets' kernel buffers — server blocked writing responses nobody
// reads, client blocked writing requests nobody accepts — and deadlock.
const pipelineChunk = 512

// Flush sends the queued commands, reads all responses in order, and
// resets the pipeline. Commands go out in chunks of pipelineChunk, each
// chunk a single network write. It returns the first error encountered;
// server-side errors for individual commands surface as typed wire
// errors, and every response is still drained so the connection stays
// usable.
func (p *Pipeline) Flush() error { return p.FlushContext(context.Background()) }

// FlushContext sends the queued commands honoring ctx; see Flush.
func (p *Pipeline) FlushContext(ctx context.Context) error {
	if err := p.err; err != nil {
		p.err = nil
		p.cmds = nil
		return err
	}
	if len(p.cmds) == 0 {
		return nil
	}
	cmds := p.cmds
	p.cmds = nil
	select {
	case <-p.c.mu:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { p.c.mu <- struct{}{} }()
	disarm := p.c.armContext(ctx)
	defer disarm()
	var firstErr error
	for start := 0; start < len(cmds); start += pipelineChunk {
		chunk := cmds[start:min(start+pipelineChunk, len(cmds))]
		for _, cmd := range chunk {
			if err := writeCommandBuf(p.c.bw, cmd...); err != nil {
				return p.c.transportErr(ctx, "pipeline send", err)
			}
		}
		if err := p.c.bw.Flush(); err != nil {
			return p.c.transportErr(ctx, "pipeline send", err)
		}
		for range chunk {
			v, err := ReadValue(p.c.br)
			if err != nil {
				// The connection is broken; responses cannot be drained.
				return p.c.transportErr(ctx, "pipeline recv", err)
			}
			if v.Kind == KindError && firstErr == nil {
				firstErr = decodeWireError(v.Str)
			}
		}
	}
	return firstErr
}

// Get fetches the current value of key; ErrNotFound if absent or deleted.
func (c *Client) Get(key string) (string, error) {
	return c.GetContext(context.Background(), key)
}

// GetContext fetches the current value of key; ErrNotFound if absent or
// deleted.
func (c *Client) GetContext(ctx context.Context, key string) (string, error) {
	v, err := c.roundTrip(ctx, "GET", key)
	if err != nil {
		return "", err
	}
	switch v.Kind {
	case KindNil:
		return "", ErrNotFound
	case KindBulk:
		return v.Str, nil
	default:
		return "", fmt.Errorf("%w: unexpected GET reply %+v", ErrProtocol, v)
	}
}

// GetAt fetches the version of key in effect at time t.
func (c *Client) GetAt(key string, t time.Time) (ttkv.Version, error) {
	return c.GetAtContext(context.Background(), key, t)
}

// GetAtContext fetches the version of key in effect at time t.
func (c *Client) GetAtContext(ctx context.Context, key string, t time.Time) (ttkv.Version, error) {
	v, err := c.roundTrip(ctx, "GETAT", key, strconv.FormatInt(t.UnixNano(), 10))
	if err != nil {
		return ttkv.Version{}, err
	}
	if v.Kind == KindNil {
		return ttkv.Version{}, ErrNotFound
	}
	return parseVersion(v)
}

// History fetches the full version history of key, oldest first. A key the
// server has never seen yields an empty history.
func (c *Client) History(key string) ([]ttkv.Version, error) {
	return c.HistoryContext(context.Background(), key)
}

// HistoryContext fetches the full version history of key, oldest first.
func (c *Client) HistoryContext(ctx context.Context, key string) ([]ttkv.Version, error) {
	v, err := c.roundTrip(ctx, "HIST", key)
	if err != nil {
		return nil, err
	}
	if v.Kind != KindArray {
		return nil, fmt.Errorf("%w: unexpected HIST reply %+v", ErrProtocol, v)
	}
	out := make([]ttkv.Version, 0, len(v.Array))
	for _, el := range v.Array {
		ver, err := parseVersion(el)
		if err != nil {
			return nil, err
		}
		out = append(out, ver)
	}
	return out, nil
}

// Keys lists every key the server has seen, sorted.
func (c *Client) Keys() ([]string, error) {
	return c.KeysContext(context.Background())
}

// KeysContext lists every key the server has seen, sorted.
func (c *Client) KeysContext(ctx context.Context) ([]string, error) {
	v, err := c.roundTrip(ctx, "KEYS")
	if err != nil {
		return nil, err
	}
	if v.Kind != KindArray {
		return nil, fmt.Errorf("%w: unexpected KEYS reply %+v", ErrProtocol, v)
	}
	out := make([]string, 0, len(v.Array))
	for _, el := range v.Array {
		if el.Kind != KindBulk {
			return nil, fmt.Errorf("%w: non-bulk key %+v", ErrProtocol, el)
		}
		out = append(out, el.Str)
	}
	return out, nil
}

// ModCount returns the total modifications (writes + deletes) of key.
func (c *Client) ModCount(key string) (int, error) {
	return c.ModCountContext(context.Background(), key)
}

// ModCountContext returns the total modifications (writes + deletes) of
// key.
func (c *Client) ModCountContext(ctx context.Context, key string) (int, error) {
	v, err := c.roundTrip(ctx, "MODCOUNT", key)
	if err != nil {
		return 0, err
	}
	if v.Kind != KindInt {
		return 0, fmt.Errorf("%w: unexpected MODCOUNT reply %+v", ErrProtocol, v)
	}
	return int(v.Int), nil
}

// ModTimes returns the distinct modification timestamps of keys, newest
// first.
func (c *Client) ModTimes(keys ...string) ([]time.Time, error) {
	return c.ModTimesContext(context.Background(), keys...)
}

// ModTimesContext returns the distinct modification timestamps of keys,
// newest first.
func (c *Client) ModTimesContext(ctx context.Context, keys ...string) ([]time.Time, error) {
	args := append([]string{"MODTIMES"}, keys...)
	v, err := c.roundTrip(ctx, args...)
	if err != nil {
		return nil, err
	}
	if v.Kind != KindArray {
		return nil, fmt.Errorf("%w: unexpected MODTIMES reply %+v", ErrProtocol, v)
	}
	out := make([]time.Time, 0, len(v.Array))
	for _, el := range v.Array {
		ns, err := strconv.ParseInt(el.Str, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad timestamp %q", ErrProtocol, el.Str)
		}
		out = append(out, time.Unix(0, ns).UTC())
	}
	return out, nil
}

// ClusterSnapshot is the client-side view of one CLUSTERS reply: the
// server engine's published clustering plus its publish counter, which
// increments on every server-side recluster (poll it to detect change).
type ClusterSnapshot struct {
	Version  uint64
	Clusters []core.Cluster
}

// Clusters fetches the server's current live clustering. minSize filters
// to clusters with at least that many member keys (0 keeps all; 2 gives
// the paper's multi-key clusters). The snapshot is stale by at most the
// server's recluster interval plus any still-open co-modification
// windows. Requires the server to run with analytics enabled.
func (c *Client) Clusters(minSize int) (ClusterSnapshot, error) {
	return c.ClustersContext(context.Background(), minSize)
}

// ClustersContext fetches the server's current live clustering; see
// Clusters.
func (c *Client) ClustersContext(ctx context.Context, minSize int) (ClusterSnapshot, error) {
	args := []string{"CLUSTERS"}
	if minSize > 0 {
		args = append(args, strconv.Itoa(minSize))
	}
	v, err := c.roundTrip(ctx, args...)
	if err != nil {
		return ClusterSnapshot{}, err
	}
	if v.Kind != KindArray || len(v.Array) < 1 || v.Array[0].Kind != KindInt {
		return ClusterSnapshot{}, fmt.Errorf("%w: unexpected CLUSTERS reply %+v", ErrProtocol, v)
	}
	snap := ClusterSnapshot{Version: uint64(v.Array[0].Int)}
	for _, el := range v.Array[1:] {
		if el.Kind != KindArray || len(el.Array) < 3 ||
			el.Array[0].Kind != KindInt || el.Array[1].Kind != KindInt {
			return ClusterSnapshot{}, fmt.Errorf("%w: bad cluster shape %+v", ErrProtocol, el)
		}
		cl := core.Cluster{
			ModCount: int(el.Array[0].Int),
			Keys:     make([]string, 0, len(el.Array)-2),
		}
		if ns := el.Array[1].Int; ns != 0 {
			cl.LastModified = time.Unix(0, ns).UTC()
		}
		for _, kv := range el.Array[2:] {
			if kv.Kind != KindBulk {
				return ClusterSnapshot{}, fmt.Errorf("%w: non-bulk cluster key %+v", ErrProtocol, kv)
			}
			cl.Keys = append(cl.Keys, kv.Str)
		}
		snap.Clusters = append(snap.Clusters, cl)
	}
	return snap, nil
}

// Correlation fetches the live co-modification correlation of two keys,
// in [0, 2]. Requires the server to run with analytics enabled.
func (c *Client) Correlation(a, b string) (float64, error) {
	return c.CorrelationContext(context.Background(), a, b)
}

// CorrelationContext fetches the live co-modification correlation of two
// keys, in [0, 2].
func (c *Client) CorrelationContext(ctx context.Context, a, b string) (float64, error) {
	v, err := c.roundTrip(ctx, "CORR", a, b)
	if err != nil {
		return 0, err
	}
	if v.Kind != KindBulk {
		return 0, fmt.Errorf("%w: unexpected CORR reply %+v", ErrProtocol, v)
	}
	f, err := strconv.ParseFloat(v.Str, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad CORR value %q", ErrProtocol, v.Str)
	}
	return f, nil
}

// Stats fetches the server's store statistics.
func (c *Client) Stats() (ttkv.Stats, error) {
	return c.StatsContext(context.Background())
}

// StatsContext fetches the server's store statistics.
func (c *Client) StatsContext(ctx context.Context) (ttkv.Stats, error) {
	v, err := c.roundTrip(ctx, "STATS")
	if err != nil {
		return ttkv.Stats{}, err
	}
	if v.Kind != KindArray || len(v.Array) != 6 {
		return ttkv.Stats{}, fmt.Errorf("%w: unexpected STATS reply %+v", ErrProtocol, v)
	}
	for _, el := range v.Array {
		if el.Kind != KindInt {
			return ttkv.Stats{}, fmt.Errorf("%w: non-int stat %+v", ErrProtocol, el)
		}
	}
	return ttkv.Stats{
		Keys:        int(v.Array[0].Int),
		Writes:      uint64(v.Array[1].Int),
		Deletes:     uint64(v.Array[2].Int),
		Reads:       uint64(v.Array[3].Int),
		Versions:    int(v.Array[4].Int),
		ApproxBytes: v.Array[5].Int,
	}, nil
}

func parseVersion(v Value) (ttkv.Version, error) {
	if v.Kind != KindArray || len(v.Array) != 3 {
		return ttkv.Version{}, fmt.Errorf("%w: bad version shape %+v", ErrProtocol, v)
	}
	ns, err := strconv.ParseInt(v.Array[0].Str, 10, 64)
	if err != nil {
		return ttkv.Version{}, fmt.Errorf("%w: bad version time %q", ErrProtocol, v.Array[0].Str)
	}
	return ttkv.Version{
		Time:    time.Unix(0, ns).UTC(),
		Deleted: v.Array[1].Str == "1",
		Value:   v.Array[2].Str,
	}, nil
}
