package ttkvwire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ocasta/internal/ttkv"
)

// ErrNoCluster is returned when no configured peer is reachable.
var ErrNoCluster = errors.New("ttkvwire: no reachable cluster member")

// FailoverOption configures a FailoverClient; see the With* constructors.
type FailoverOption func(*failoverOptions)

type failoverOptions struct {
	peers        []string
	dialTimeout  time.Duration
	callTimeout  time.Duration
	semiSyncAcks int
	maxRedirects int
	retryBackoff time.Duration
	logf         func(format string, args ...any)
}

func defaultFailoverOptions() failoverOptions {
	return failoverOptions{
		dialTimeout:  2 * time.Second,
		maxRedirects: 8,
		retryBackoff: 50 * time.Millisecond,
	}
}

// WithPeers seeds the client's member list. At least one peer is
// required; the list grows automatically as TOPO replies reveal more
// members.
func WithPeers(addrs ...string) FailoverOption {
	return func(o *failoverOptions) { o.peers = append(o.peers, addrs...) }
}

// WithDialTimeout bounds each connection attempt (default 2s).
func WithDialTimeout(d time.Duration) FailoverOption {
	return func(o *failoverOptions) { o.dialTimeout = d }
}

// WithCallTimeout bounds each individual round trip, on top of whatever
// deadline the per-call context carries (default: none).
func WithCallTimeout(d time.Duration) FailoverOption {
	return func(o *failoverOptions) { o.callTimeout = d }
}

// WithSemiSync requires k replica acknowledgements per write: every
// connection the client establishes negotiates SEMISYNC k, so write acks
// imply the write reached k replicas (see SemiSyncConfig for the exact
// guarantee). k can only strengthen the server's configured default.
func WithSemiSync(k int) FailoverOption {
	return func(o *failoverOptions) { o.semiSyncAcks = k }
}

// WithMaxRedirects bounds how many redirect/rediscovery hops one
// operation may take before its error is returned (default 8).
func WithMaxRedirects(n int) FailoverOption {
	return func(o *failoverOptions) { o.maxRedirects = n }
}

// WithRetryBackoff sets the pause between failover retries (default
// 50ms). Each consecutive retry doubles it, up to 16x.
func WithRetryBackoff(d time.Duration) FailoverOption {
	return func(o *failoverOptions) { o.retryBackoff = d }
}

// WithLogf routes the client's reconnect/redirect diagnostics to f.
func WithLogf(f func(format string, args ...any)) FailoverOption {
	return func(o *failoverOptions) { o.logf = f }
}

// FailoverClient is a cluster-aware TTKV client: it discovers the
// current primary through TOPO, follows MOVED redirects, rediscovers the
// topology when its node dies or demotes, and retries transient (RETRY)
// conditions — so a failover in progress surfaces to callers as latency,
// not an error, as long as a new primary emerges within the redirect
// budget. All methods take a context and are safe for concurrent use.
//
// Against a hash-slot partitioned cluster (TOPO advertises a slot map)
// the client additionally routes every keyed operation to the slot's
// owner over a per-node connection pool, refreshing its slot map from
// MOVED redirects and TOPO probes; see slotclient.go.
//
// Error contract: typed wire errors that survive the retry budget are
// returned as-is (errors.Is(err, ErrReadOnly) / ErrRetryable,
// errors.As(&ErrNotLeader{})); application errors (ErrNotFound,
// *ErrPartialApply, *RemoteError) are returned immediately, never
// retried.
type FailoverClient struct {
	opts failoverOptions

	mu       sync.Mutex
	cl       *Client
	attached string   // address the current connection targets
	leader   string   // believed current leader ("" = unknown)
	peers    []string // known member list, deduplicated, discovery order

	// Hash-slot routing state, populated the first time a TOPO reply
	// advertises a slot map (see slotclient.go).
	slots     int                // slot-space size; 0 = not a slot cluster
	slotOwner []string           // per-slot owner cache, "" = unknown
	slotConns map[string]*Client // one pooled connection per owner address
}

// DialCluster connects to a TTKV cluster. It tries the configured peers
// until it finds the primary (or, failing that, any reachable member —
// reads work against replicas; writes will redirect once a primary
// exists).
func DialCluster(ctx context.Context, opts ...FailoverOption) (*FailoverClient, error) {
	o := defaultFailoverOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if len(o.peers) == 0 {
		return nil, errors.New("ttkvwire: DialCluster needs at least one peer (WithPeers)")
	}
	fc := &FailoverClient{opts: o}
	fc.peers = dedupe(o.peers)
	if _, err := fc.connect(ctx); err != nil {
		return nil, err
	}
	return fc, nil
}

// Close drops the current connection and the slot-routing pool.
func (fc *FailoverClient) Close() error {
	fc.mu.Lock()
	cl := fc.cl
	fc.cl = nil
	pool := fc.slotConns
	fc.slotConns = nil
	fc.mu.Unlock()
	for _, pc := range pool {
		pc.Close()
	}
	if cl != nil {
		return cl.Close()
	}
	return nil
}

// Leader returns the address the client believes is the current leader —
// empty while unknown (e.g. when only a read-only replica was reachable).
// The node the client is actually connected to is Attached, which can
// differ while no primary is reachable.
func (fc *FailoverClient) Leader() string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.leader
}

// Attached returns the address of the node the client's connection
// currently targets ("" when disconnected). Under normal operation this
// is the leader; during an outage it may be a read-only fallback.
func (fc *FailoverClient) Attached() string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.attached
}

// Peers returns the client's known member list.
func (fc *FailoverClient) Peers() []string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return append([]string(nil), fc.peers...)
}

func (fc *FailoverClient) logf(format string, args ...any) {
	if fc.opts.logf != nil {
		fc.opts.logf(format, args...)
	}
}

func dedupe(addrs []string) []string {
	seen := make(map[string]struct{}, len(addrs))
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if a == "" {
			continue
		}
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

// notePeers merges newly learned member addresses — and, in slot-cluster
// mode, the reply's slot ranges — into the client's routing state.
func (fc *FailoverClient) notePeers(topo Topology) {
	fc.mu.Lock()
	fc.peers = dedupe(append(fc.peers, append([]string{topo.Self, topo.Leader}, topo.Peers...)...))
	fc.noteSlotRangesLocked(topo)
	fc.mu.Unlock()
}

// connect establishes (or returns) the client's connection. It walks the
// candidate list — last-known leader first — reading each member's TOPO:
// a primary is used directly, a replica forwards the walk to its leader,
// and when no primary is reachable the first reachable member serves as
// a read-only fallback.
func (fc *FailoverClient) connect(ctx context.Context) (*Client, error) {
	fc.mu.Lock()
	if fc.cl != nil {
		cl := fc.cl
		fc.mu.Unlock()
		return cl, nil
	}
	candidates := fc.peers
	if fc.leader != "" {
		candidates = append([]string{fc.leader}, candidates...)
	}
	fc.mu.Unlock()
	candidates = dedupe(candidates)

	var fallback *Client
	var fallbackAddr string
	var fallbackTopo Topology
	defer func() {
		if fallback != nil {
			fallback.Close()
		}
	}()
	tried := make(map[string]struct{})
	for i := 0; i < len(candidates); i++ {
		addr := candidates[i]
		if _, dup := tried[addr]; dup {
			continue
		}
		tried[addr] = struct{}{}
		cl, topo, err := fc.probe(ctx, addr)
		if err != nil {
			fc.logf("failover client: %s unreachable: %v", addr, err)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		fc.notePeers(topo)
		if topo.Role == RolePrimary {
			if fallback != nil {
				fallback.Close()
				fallback = nil
			}
			return fc.adopt(ctx, cl, addr, topo)
		}
		// A replica that knows its leader forwards the walk there.
		if topo.Leader != "" && topo.Leader != addr {
			candidates = append(candidates, topo.Leader)
		}
		if fallback == nil {
			fallback, fallbackAddr, fallbackTopo = cl, addr, topo
		} else {
			cl.Close()
		}
	}
	if fallback != nil {
		fc.logf("failover client: no primary reachable; using %s read-only", fallbackAddr)
		cl := fallback
		fallback = nil
		return fc.adopt(ctx, cl, fallbackAddr, fallbackTopo)
	}
	return nil, ErrNoCluster
}

// probe dials addr and reads its topology.
func (fc *FailoverClient) probe(ctx context.Context, addr string) (*Client, Topology, error) {
	dctx := ctx
	if fc.opts.dialTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, fc.opts.dialTimeout)
		defer cancel()
	}
	cl, err := DialContext(dctx, addr)
	if err != nil {
		return nil, Topology{}, err
	}
	topo, err := cl.TopologyContext(dctx)
	if err != nil {
		cl.Close()
		return nil, Topology{}, err
	}
	return cl, topo, nil
}

// adopt installs cl as the live connection, negotiating semi-sync if
// configured. Topology self-addresses win over the dialed address so
// future redirects use the node's advertised identity.
func (fc *FailoverClient) adopt(ctx context.Context, cl *Client, addr string, topo Topology) (*Client, error) {
	if fc.opts.semiSyncAcks > 0 {
		if err := cl.SemiSyncContext(ctx, fc.opts.semiSyncAcks); err != nil {
			cl.Close()
			return nil, fmt.Errorf("ttkvwire: negotiating semi-sync with %s: %w", addr, err)
		}
	}
	if topo.Self != "" {
		addr = topo.Self
	}
	fc.mu.Lock()
	if fc.cl != nil {
		// A concurrent caller connected first; use theirs.
		existing := fc.cl
		fc.mu.Unlock()
		cl.Close()
		return existing, nil
	}
	fc.cl = cl
	fc.attached = addr
	// The believed leader is a separate fact from the attachment: adopting
	// a read-only fallback must not make Leader() report a replica (and
	// must not make the next write re-dial the known-read-only node as if
	// it were the primary).
	if topo.Role == RolePrimary {
		fc.leader = addr
	} else {
		fc.leader = topo.Leader
	}
	fc.mu.Unlock()
	return cl, nil
}

// dropConn discards cl if it is still the live connection.
func (fc *FailoverClient) dropConn(cl *Client) {
	fc.mu.Lock()
	if fc.cl == cl {
		fc.cl = nil
		fc.attached = ""
	}
	fc.mu.Unlock()
	cl.Close()
}

// setLeader records a redirect target and drops the current connection
// so the next attempt dials it.
func (fc *FailoverClient) setLeader(cl *Client, leader string) {
	fc.mu.Lock()
	if leader != "" {
		fc.leader = leader
		fc.peers = dedupe(append(fc.peers, leader))
	} else {
		fc.leader = "" // unknown: full rediscovery
	}
	fc.mu.Unlock()
	fc.dropConn(cl)
}

// do runs op with redirect-on-readonly, reconnect-on-promotion, and
// retry-on-transient handling. Each redirect, rediscovery, or retry
// consumes one hop from the budget; exhausting it returns the last
// error.
func (fc *FailoverClient) do(ctx context.Context, op func(ctx context.Context, cl *Client) error) error {
	var lastErr error
	backoff := fc.opts.retryBackoff
	maxBackoff := 16 * fc.opts.retryBackoff
	for hop := 0; hop <= fc.opts.maxRedirects; hop++ {
		if hop > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < maxBackoff {
				backoff *= 2
			}
		}
		cl, err := fc.connect(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			lastErr = err
			continue
		}
		opctx := ctx
		cancel := func() {}
		if fc.opts.callTimeout > 0 {
			opctx, cancel = context.WithTimeout(ctx, fc.opts.callTimeout)
		}
		err = op(opctx, cl)
		cancel()
		switch {
		case err == nil:
			return nil
		case ctx.Err() != nil:
			// The caller's context ended; don't burn hops on it.
			return err
		default:
		}
		var notLeader *ErrNotLeader
		var partial *ErrPartialApply
		var remote *RemoteError
		switch {
		case errors.As(err, &notLeader):
			fc.logf("failover client: redirected to %s", notLeader.Leader)
			fc.setLeader(cl, notLeader.Leader)
		case errors.Is(err, ErrReadOnly):
			fc.logf("failover client: %s is read-only; rediscovering", fc.Attached())
			fc.setLeader(cl, "")
		case errors.Is(err, ErrRetryable):
			fc.logf("failover client: transient: %v", err)
		case errors.As(err, &partial):
			// An application-level outcome, not a transport failure: the
			// connection is healthy and the Applied count is meaningful.
			// Re-sending the batch would fail deterministically again (and
			// burn the redirect budget); the caller decides what to do with
			// the applied prefix.
			return err
		case errors.As(err, &remote), errors.Is(err, ErrNotFound), errors.Is(err, ErrProtocol):
			// Application-level outcome; retrying cannot change it.
			return err
		default:
			// Transport failure: the node (or our connection) died.
			fc.logf("failover client: connection to %s failed: %v", fc.Attached(), err)
			fc.dropConn(cl)
		}
		lastErr = err
	}
	return fmt.Errorf("ttkvwire: failover budget exhausted: %w", lastErr)
}

// Ping checks liveness of the current node.
func (fc *FailoverClient) Ping(ctx context.Context) error {
	return fc.do(ctx, func(ctx context.Context, cl *Client) error {
		return cl.PingContext(ctx)
	})
}

// Set records a write of key at time t on the key's owner.
func (fc *FailoverClient) Set(ctx context.Context, key, value string, t time.Time) error {
	return fc.doKey(ctx, key, func(ctx context.Context, cl *Client) error {
		return cl.SetContext(ctx, key, value, t)
	})
}

// Delete records a deletion of key at time t on the key's owner.
func (fc *FailoverClient) Delete(ctx context.Context, key string, t time.Time) error {
	return fc.doKey(ctx, key, func(ctx context.Context, cl *Client) error {
		return cl.DeleteContext(ctx, key, t)
	})
}

// MSet records a batch of writes. Chunks that applied before a mid-batch
// failover may be re-applied by a retry; mutations are idempotent per
// (key, timestamp), so the history converges. Against a slot-partitioned
// cluster the batch is split by slot owner (see msetSlots); a returned
// *ErrPartialApply then reports Applied as a count of applied mutations
// across nodes, not a prefix of the batch.
func (fc *FailoverClient) MSet(ctx context.Context, muts []ttkv.Mutation) error {
	if fc.slotCount() > 0 {
		return fc.msetSlots(ctx, muts)
	}
	return fc.do(ctx, func(ctx context.Context, cl *Client) error {
		return cl.MSetContext(ctx, muts)
	})
}

// Get fetches the current value of key; ErrNotFound if absent or deleted.
func (fc *FailoverClient) Get(ctx context.Context, key string) (string, error) {
	var out string
	err := fc.doKey(ctx, key, func(ctx context.Context, cl *Client) error {
		v, err := cl.GetContext(ctx, key)
		out = v
		return err
	})
	return out, err
}

// GetAt fetches the version of key in effect at time t.
func (fc *FailoverClient) GetAt(ctx context.Context, key string, t time.Time) (ttkv.Version, error) {
	var out ttkv.Version
	err := fc.doKey(ctx, key, func(ctx context.Context, cl *Client) error {
		v, err := cl.GetAtContext(ctx, key, t)
		out = v
		return err
	})
	return out, err
}

// History fetches the full version history of key, oldest first.
func (fc *FailoverClient) History(ctx context.Context, key string) ([]ttkv.Version, error) {
	var out []ttkv.Version
	err := fc.doKey(ctx, key, func(ctx context.Context, cl *Client) error {
		v, err := cl.HistoryContext(ctx, key)
		out = v
		return err
	})
	return out, err
}

// Keys lists every key the cluster has seen, sorted. Against a
// slot-partitioned cluster the listing is merged across the known slot
// owners (slots are disjoint, so the union has no duplicates).
func (fc *FailoverClient) Keys(ctx context.Context) ([]string, error) {
	if fc.slotCount() > 0 {
		return fc.keysSlots(ctx)
	}
	var out []string
	err := fc.do(ctx, func(ctx context.Context, cl *Client) error {
		v, err := cl.KeysContext(ctx)
		out = v
		return err
	})
	return out, err
}

// Stats fetches the attached node's store statistics.
func (fc *FailoverClient) Stats(ctx context.Context) (ttkv.Stats, error) {
	var out ttkv.Stats
	err := fc.do(ctx, func(ctx context.Context, cl *Client) error {
		v, err := cl.StatsContext(ctx)
		out = v
		return err
	})
	return out, err
}

// Clusters fetches the attached node's live clustering snapshot.
func (fc *FailoverClient) Clusters(ctx context.Context, minSize int) (ClusterSnapshot, error) {
	var out ClusterSnapshot
	err := fc.do(ctx, func(ctx context.Context, cl *Client) error {
		v, err := cl.ClustersContext(ctx, minSize)
		out = v
		return err
	})
	return out, err
}

// Topology fetches the attached node's cluster view.
func (fc *FailoverClient) Topology(ctx context.Context) (Topology, error) {
	var out Topology
	err := fc.do(ctx, func(ctx context.Context, cl *Client) error {
		v, err := cl.TopologyContext(ctx)
		out = v
		return err
	})
	return out, err
}
