package ttkvwire

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ocasta/internal/repair"
)

// ErrRepairTimeout is returned by RepairWait when the job does not finish
// within the deadline.
var ErrRepairTimeout = errors.New("ttkvwire: repair job did not finish in time")

// RepairRequest describes one remote repair search (the REPAIR command).
type RepairRequest struct {
	// App is the canonical application model name ("msword", "evolution").
	App string
	// Trial is the recorded UI action script making the symptom visible.
	// Actions must not contain ";" (the wire separator).
	Trial []string
	// FixedMarker/BrokenMarker build the server-side screenshot oracle; at
	// least one must be non-empty.
	FixedMarker  string
	BrokenMarker string

	Strategy repair.Strategy
	// NoClust rolls back one setting at a time (the Table IV baseline).
	NoClust bool
	// Live searches the daemon's published live clustering (core.Engine
	// snapshot) instead of re-clustering the history per call. Requires
	// analytics enabled on the server.
	Live bool
	// Window/Threshold are Ocasta's tunables; zero selects the defaults.
	Window    time.Duration
	Threshold float64
	// Start/End bound the searched history; zero means unbounded.
	Start, End time.Time
	// MaxTrials caps the search (0 = unlimited).
	MaxTrials int
}

// RepairScreenshot is one deduplicated trial screen reported by RSTAT.
type RepairScreenshot struct {
	Trial    int
	Cluster  int
	At       time.Time
	Hash     string
	Rendered string
}

// RepairStatus is the client-side view of one repair job.
type RepairStatus struct {
	ID          string
	State       string // queued | running | done | failed
	Err         string // non-empty when failed
	TrialsDone  int
	TotalTrials int
	Found       bool
	FixAt       time.Time
	Offending   []string // the offending cluster's keys
	Screenshots []RepairScreenshot
}

// Finished reports whether the job reached a terminal state.
func (st *RepairStatus) Finished() bool {
	return st.State == JobDone || st.State == JobFailed
}

// RepairSubmit submits an asynchronous repair search and returns its job
// id. Poll with RepairStatus (or RepairWait), confirm the screenshot, and
// apply the rollback with RepairFix.
func (c *Client) RepairSubmit(req RepairRequest) (string, error) {
	return c.RepairSubmitContext(context.Background(), req)
}

// RepairSubmitContext submits an asynchronous repair search; see
// RepairSubmit.
func (c *Client) RepairSubmitContext(ctx context.Context, req RepairRequest) (string, error) {
	if len(req.Trial) == 0 {
		return "", repair.ErrNoTrial
	}
	for _, a := range req.Trial {
		if strings.Contains(a, trialSep) {
			return "", fmt.Errorf("ttkvwire: trial action %q contains %q", a, trialSep)
		}
	}
	args := []string{
		"REPAIR", req.App, strings.Join(req.Trial, trialSep),
		req.FixedMarker, req.BrokenMarker,
	}
	opt := func(k, v string) { args = append(args, k, v) }
	if req.Strategy != 0 {
		opt("strategy", req.Strategy.String())
	}
	if req.NoClust {
		opt("noclust", "1")
	}
	if req.Live {
		opt("live", "1")
	}
	if req.Window != 0 {
		opt("window", strconv.FormatInt(int64(req.Window), 10))
	}
	if req.Threshold != 0 {
		opt("threshold", strconv.FormatFloat(req.Threshold, 'g', -1, 64))
	}
	if !req.Start.IsZero() {
		opt("start", strconv.FormatInt(req.Start.UnixNano(), 10))
	}
	if !req.End.IsZero() {
		opt("end", strconv.FormatInt(req.End.UnixNano(), 10))
	}
	if req.MaxTrials != 0 {
		opt("maxtrials", strconv.Itoa(req.MaxTrials))
	}
	v, err := c.roundTrip(ctx, args...)
	if err != nil {
		return "", err
	}
	if v.Kind != KindBulk || v.Str == "" {
		return "", fmt.Errorf("%w: unexpected REPAIR reply %+v", ErrProtocol, v)
	}
	return v.Str, nil
}

// RepairStatus polls one repair job.
func (c *Client) RepairStatus(id string) (RepairStatus, error) {
	return c.RepairStatusContext(context.Background(), id)
}

// RepairStatusContext polls one repair job.
func (c *Client) RepairStatusContext(ctx context.Context, id string) (RepairStatus, error) {
	v, err := c.roundTrip(ctx, "RSTAT", id)
	if err != nil {
		return RepairStatus{}, err
	}
	if v.Kind != KindArray || len(v.Array) != 8 ||
		v.Array[0].Kind != KindBulk || v.Array[1].Kind != KindBulk ||
		v.Array[2].Kind != KindInt || v.Array[3].Kind != KindInt ||
		v.Array[4].Kind != KindInt || v.Array[5].Kind != KindInt ||
		v.Array[6].Kind != KindArray || v.Array[7].Kind != KindArray {
		return RepairStatus{}, fmt.Errorf("%w: unexpected RSTAT reply %+v", ErrProtocol, v)
	}
	st := RepairStatus{
		ID:          id,
		State:       v.Array[0].Str,
		Err:         v.Array[1].Str,
		TrialsDone:  int(v.Array[2].Int),
		TotalTrials: int(v.Array[3].Int),
		Found:       v.Array[4].Int == 1,
	}
	if ns := v.Array[5].Int; ns != 0 {
		st.FixAt = time.Unix(0, ns).UTC()
	}
	for _, kv := range v.Array[6].Array {
		if kv.Kind != KindBulk {
			return RepairStatus{}, fmt.Errorf("%w: non-bulk cluster key %+v", ErrProtocol, kv)
		}
		st.Offending = append(st.Offending, kv.Str)
	}
	for _, sv := range v.Array[7].Array {
		if sv.Kind != KindArray || len(sv.Array) != 5 ||
			sv.Array[0].Kind != KindInt || sv.Array[1].Kind != KindInt ||
			sv.Array[2].Kind != KindInt || sv.Array[3].Kind != KindBulk ||
			sv.Array[4].Kind != KindBulk {
			return RepairStatus{}, fmt.Errorf("%w: bad screenshot shape %+v", ErrProtocol, sv)
		}
		st.Screenshots = append(st.Screenshots, RepairScreenshot{
			Trial:    int(sv.Array[0].Int),
			Cluster:  int(sv.Array[1].Int),
			At:       time.Unix(0, sv.Array[2].Int).UTC(),
			Hash:     sv.Array[3].Str,
			Rendered: sv.Array[4].Str,
		})
	}
	return st, nil
}

// RepairWait polls a job every poll interval until it finishes or timeout
// elapses, returning the final status. timeout <= 0 waits indefinitely —
// bound it when the server may be saturated (queued jobs wait for a
// MaxActive slot before running).
func (c *Client) RepairWait(id string, poll, timeout time.Duration) (RepairStatus, error) {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.RepairStatus(id)
		if err != nil {
			return st, err
		}
		if st.Finished() {
			return st, nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return st, ErrRepairTimeout
		}
		time.Sleep(poll)
	}
}

// RepairWaitContext polls a job every poll interval until it finishes or
// ctx ends, returning the final status. A context deadline surfaces as
// ErrRepairTimeout (matching RepairWait); a cancellation surfaces as the
// context's error. Unlike RepairWait, the deadline also bounds each RSTAT
// round trip — a hung server fails the wait instead of blocking it.
func (c *Client) RepairWaitContext(ctx context.Context, id string, poll time.Duration) (RepairStatus, error) {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	mapErr := func(err error) error {
		if errors.Is(err, context.DeadlineExceeded) {
			return ErrRepairTimeout
		}
		return err
	}
	for {
		st, err := c.RepairStatusContext(ctx, id)
		if err != nil {
			return st, mapErr(err)
		}
		if st.Finished() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, mapErr(ctx.Err())
		case <-time.After(poll):
		}
	}
}

// RepairFix applies a finished job's confirmed fix: the offending cluster
// is atomically rolled back to its values at the fix point, recorded as
// new writes at time at. Returns the number of reverted keys.
func (c *Client) RepairFix(id string, at time.Time) (int, error) {
	return c.RepairFixContext(context.Background(), id, at)
}

// RepairFixContext applies a finished job's confirmed fix; see RepairFix.
func (c *Client) RepairFixContext(ctx context.Context, id string, at time.Time) (int, error) {
	if at.IsZero() {
		return 0, fmt.Errorf("ttkvwire: RepairFix requires a non-zero apply time")
	}
	v, err := c.roundTrip(ctx, "RFIX", id, strconv.FormatInt(at.UnixNano(), 10))
	if err != nil {
		return 0, err
	}
	if v.Kind != KindInt {
		return 0, fmt.Errorf("%w: unexpected RFIX reply %+v", ErrProtocol, v)
	}
	return int(v.Int), nil
}
