package ttkvwire

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ocasta/internal/ttkv"
)

// chopProxy sits between a replica and its primary and kills the
// connection after a per-attempt byte budget in the primary→replica
// direction — cutting the feed mid-snapshot and mid-stream at arbitrary
// byte offsets, the failure replication resume must survive exactly-once.
type chopProxy struct {
	ln      net.Listener
	backend string
	budget  func(attempt int) int64

	mu       sync.Mutex
	attempts int
	conns    []net.Conn
	closed   bool
}

func startChopProxy(t *testing.T, backend string, budget func(attempt int) int64) *chopProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chopProxy{ln: ln, backend: backend, budget: budget}
	go p.run()
	t.Cleanup(p.Close)
	return p
}

func (p *chopProxy) Addr() string { return p.ln.Addr().String() }

func (p *chopProxy) Attempts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attempts
}

func (p *chopProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.conns
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (p *chopProxy) run() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		attempt := p.attempts
		p.attempts++
		p.conns = append(p.conns, client)
		p.mu.Unlock()
		go p.pipe(client, p.budget(attempt))
	}
}

func (p *chopProxy) pipe(client net.Conn, budget int64) {
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	p.conns = append(p.conns, backend)
	p.mu.Unlock()
	done := make(chan struct{}, 2)
	go func() { // replica→primary: unrestricted (SYNC command, acks)
		io.Copy(backend, client) //nolint:errcheck
		done <- struct{}{}
	}()
	go func() { // primary→replica: chopped at the byte budget
		io.CopyN(client, backend, budget) //nolint:errcheck
		done <- struct{}{}
	}()
	<-done
	client.Close()
	backend.Close()
	<-done
}

// TestReplChaosResumeExactlyOnce kills the replication connection at
// randomized byte offsets — including mid-snapshot — while the primary
// keeps writing. Every reconnect must resume from the replica's applied
// sequence with no duplicate or missing records: the final dumps must be
// byte-identical (a duplicate would add versions, a gap would drop them,
// and ApplyReplicated's sequence guard turns either into a loud error).
func TestReplChaosResumeExactlyOnce(t *testing.T) {
	primary := ttkv.NewSharded(8)
	rl := ttkv.NewReplLog(nil)
	if err := primary.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	// A fat pre-loaded history makes the handshake snapshot large enough
	// that small early budgets cut it mid-transfer.
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("snap/k%03d", i%200)
		if err := primary.Set(k, fmt.Sprintf("value-%06d", i), base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startReplPrimary(t, primary, rl, nil)

	const chopAttempts = 8
	rng := rand.New(rand.NewSource(42))
	budgets := make([]int64, chopAttempts)
	for i := range budgets {
		// Grows from ~1KiB (mid-snapshot) to ~256KiB so later attempts
		// reach the live tail before dying; past them the feed is clean.
		budgets[i] = 1 + rng.Int63n(int64(1024<<(i%6)))
	}
	proxy := startChopProxy(t, addr, func(attempt int) int64 {
		if attempt < chopAttempts {
			return budgets[attempt]
		}
		return math.MaxInt64
	})

	replica := ttkv.NewSharded(2)
	rc, err := StartReplica(ReplicaConfig{
		Primary:    proxy.Addr(),
		Store:      replica,
		MinBackoff: time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		// The chopped snapshot stalls reads; keep the retry cadence fast.
		ReadTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Stop()

	// Writers keep mutating through the whole chop phase, so resume
	// points land mid-stream too, not only mid-snapshot.
	var stop atomic.Bool
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; !stop.Load(); i++ {
			k := fmt.Sprintf("live/k%02d", i%40)
			ts := base.Add(time.Duration(5000+i) * time.Second)
			if i%17 == 0 {
				primary.Delete(k, ts)
			} else {
				primary.Set(k, fmt.Sprintf("live-%d", i), ts)
			}
			if i%500 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	deadline := time.Now().Add(60 * time.Second)
	for proxy.Attempts() <= chopAttempts {
		if time.Now().After(deadline) {
			t.Fatalf("proxy saw only %d attempts (replica status %+v)", proxy.Attempts(), rc.ReplicaStatus())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	<-writerDone

	drainReplicas(t, primary, rl, rc)
	st := rc.ReplicaStatus()
	if st.Reconnects < chopAttempts-1 {
		t.Fatalf("replica reconnected %d times; the proxy chopped %d connections", st.Reconnects, chopAttempts)
	}
	if got, want := storeDump(t, replica), storeDump(t, primary); !bytes.Equal(got, want) {
		t.Fatal("replica dump differs from primary after chaos: records duplicated or lost")
	}
	// Spot-check the exactly-once accounting a dump miss would hide:
	// per-key version counts and the applied watermark.
	if replica.CurrentSeq() != primary.CurrentSeq() {
		t.Fatalf("replica seq %d, primary seq %d", replica.CurrentSeq(), primary.CurrentSeq())
	}
	for _, k := range []string{"snap/k000", "snap/k199", "live/k00", "live/k39"} {
		if replica.ModCount(k) != primary.ModCount(k) {
			t.Fatalf("%s: replica modcount %d, primary %d", k, replica.ModCount(k), primary.ModCount(k))
		}
	}
}
