package ttkvwire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ocasta/internal/backup"
	"ocasta/internal/core"
	"ocasta/internal/ttkv"
)

// ErrServerClosed is returned by Serve after Close is called.
var ErrServerClosed = errors.New("ttkvwire: server closed")

// Server exposes a ttkv.Store over the wire protocol. Construct with
// NewServer; then either Serve an existing listener or ListenAndServe.
type Server struct {
	store     *ttkv.Store
	analytics *core.Engine    // nil when live clustering is disabled
	repairCfg RepairConfig    // bounds for the repair job manager
	backups   *backup.Manager // nil when backups are disabled

	// readOnly gates mutating commands; it flips at runtime on failover
	// (promotion clears it, demotion sets it), so it lives outside mu to
	// keep the dispatch hot path lock-free.
	readOnly atomic.Bool

	// cluster is the hash-slot partitioning state, nil outside cluster
	// mode. Copy-on-write: mutators clone-and-swap under mu, the dispatch
	// hot path does one atomic load. See slots.go.
	cluster atomic.Pointer[clusterState]
	// migMu closes the fence race in slot migration: every mutating
	// dispatch holds it for read across slot-check + apply, and MIGFENCE
	// write-locks it after publishing the fence so that by the time the
	// fence command replies, every write admitted under the pre-fence
	// state has minted its sequence (and is therefore covered by the
	// final MIGDUMP's CurrentSeq bound). Uncontended except during the
	// fence barrier itself.
	migMu sync.RWMutex

	// ackMu guards the semi-sync wake channel; see semisync.go. It is a
	// leaf lock: never acquired while holding mu, and nothing else is
	// acquired while holding it.
	ackMu   sync.Mutex
	ackWake chan struct{}

	mu sync.Mutex
	// Replication role state (see replserver.go). replLog/replCfg/runID
	// are set by EnableReplication on a primary (and cleared by
	// DisableReplication on demotion); replicaStat by SetReplicaStatus on
	// a replica. All may change at runtime under failover.
	replLog     *ttkv.ReplLog
	replCfg     ReplicationConfig
	runID       string
	replicaStat ReplicaStatusSource
	leaderHint  string          // where MOVED redirects point while read-only
	advertise   string          // this node's client-reachable address
	topoSource  func() Topology // authoritative TOPO source (failover Node)
	semiSync    SemiSyncConfig  // server-wide semi-sync default

	ln           net.Listener
	conns        map[net.Conn]struct{}
	closed       bool
	repairs      *jobManager // lazily built on first repair command
	replSessions map[*replSession]struct{}
	migSessions  map[int]*migSession // inbound slot migrations, by slot
	wg           sync.WaitGroup
}

// NewServer returns a server that serves the given store.
func NewServer(store *ttkv.Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// SetAnalytics attaches a streaming analytics engine, enabling the
// CLUSTERS and CORR commands. Call before Serve; the engine is typically
// also installed as the store's StatsObserver so it sees every write the
// server applies.
func (s *Server) SetAnalytics(e *core.Engine) { s.analytics = e }

// SetBackups attaches a backup manager, enabling the BACKUP and BSTAT
// commands. Call before Serve. Backups read through a pinned sequence
// bound without ever holding the store's write locks, so the commands
// are deliberately not mutating: a read-only replica serves them, which
// is exactly where operators want backup load to land.
func (s *Server) SetBackups(m *backup.Manager) { s.backups = m }

// SetRepair bounds the server's repair job manager (REPAIR/RSTAT/RFIX).
// Call before Serve; the zero config selects the defaults, so calling it
// is optional — repair commands are always available.
func (s *Server) SetRepair(cfg RepairConfig) { s.repairCfg = cfg }

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ttkvwire: listen: %w", err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close is called. It always returns
// a non-nil error; after Close the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("ttkvwire: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	repairs := s.repairs
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if repairs != nil {
		// Cancel running repair searches and wait for their goroutines;
		// cancellation makes each search return promptly mid-trial.
		repairs.close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	cs := &connState{}
	for {
		req, err := ReadValue(br)
		if err != nil {
			return // connection dropped or garbage; just hang up
		}
		// SYNC is the one command that abandons request/response: a
		// successful handshake turns the connection into a replication
		// feed that this handler drives until the replica goes away.
		if args, ok := syncArgs(req); ok {
			if s.trySync(conn, br, bw, args) {
				return
			}
			continue
		}
		resp := s.dispatch(cs, req)
		if err := WriteValue(bw, resp); err != nil {
			return
		}
		// Pipelining: only pay the write syscall once the connection's
		// buffered requests are drained, so a client that queued N
		// commands gets N responses in (about) one segment.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// syncArgs reports whether req is a SYNC command and returns its
// arguments if so.
func syncArgs(req Value) ([]string, bool) {
	if req.Kind != KindArray || len(req.Array) == 0 || req.Array[0].Kind != KindBulk {
		return nil, false
	}
	if !strings.EqualFold(req.Array[0].Str, "SYNC") {
		return nil, false
	}
	args := make([]string, 0, len(req.Array)-1)
	for _, v := range req.Array[1:] {
		if v.Kind != KindBulk {
			return nil, false
		}
		args = append(args, v.Str)
	}
	return args, true
}

// connState is per-connection dispatch state: session-scoped protocol
// options negotiated by the client (currently the SEMISYNC ack override)
// plus the per-command write watermark the semi-sync gate waits on.
type connState struct {
	// semiAcks is the connection's semi-sync ack requirement; 0 means no
	// override (the server-wide default applies). The effective K per
	// write is the max of the two, so a connection can strengthen but
	// never weaken the operator's durability floor.
	semiAcks int
	// lastWriteSeq is the highest sequence number the current command
	// minted, reset before every mutating dispatch. The semi-sync gate
	// waits for replicas to ack exactly this seq — not the store-wide
	// watermark, which concurrent writers inflate.
	lastWriteSeq uint64
}

func (s *Server) dispatch(cs *connState, req Value) Value {
	if req.Kind != KindArray || len(req.Array) == 0 {
		return errValue("ERR request must be a non-empty array")
	}
	args := make([]string, len(req.Array))
	for i, v := range req.Array {
		if v.Kind != KindBulk {
			return errValue("ERR request elements must be bulk strings")
		}
		args[i] = v.Str
	}
	cmd := strings.ToUpper(args[0])
	if isMutating(cmd) {
		// The cluster state must be loaded under migMu: MIGFENCE swaps in
		// the fenced state and then write-locks migMu, so any write that
		// saw the pre-fence state has finished (minted its seq) before the
		// fence replies, and any write admitted afterwards sees the fence.
		s.migMu.RLock()
		if cl := s.cluster.Load(); cl != nil {
			if rej, refused := s.clusterCheck(cl, cmd, args, true); refused {
				s.migMu.RUnlock()
				return rej
			}
		}
		if s.readOnly.Load() {
			s.migMu.RUnlock()
			return readOnlyReply(s.LeaderHint())
		}
		cs.lastWriteSeq = 0
		resp := s.dispatchCmd(cs, cmd, args)
		s.migMu.RUnlock()
		if resp.Kind != KindError {
			if gateErr, ok := s.semiSyncGate(cs); !ok {
				return gateErr
			}
		}
		return resp
	}
	if cl := s.cluster.Load(); cl != nil {
		if rej, refused := s.clusterCheck(cl, cmd, args, false); refused {
			return rej
		}
	}
	return s.dispatchCmd(cs, cmd, args)
}

func (s *Server) dispatchCmd(cs *connState, cmd string, args []string) Value {
	switch cmd {
	case "PING":
		return simple("PONG")
	case "SET":
		return s.cmdSet(cs, args[1:])
	case "MSET":
		return s.cmdMSet(cs, args[1:])
	case "DEL":
		return s.cmdDel(cs, args[1:])
	case "GET":
		return s.cmdGet(args[1:])
	case "GETAT":
		return s.cmdGetAt(args[1:])
	case "HIST":
		return s.cmdHist(args[1:])
	case "KEYS":
		return s.cmdKeys(args[1:])
	case "MODCOUNT":
		return s.cmdModCount(args[1:])
	case "MODTIMES":
		return s.cmdModTimes(args[1:])
	case "STATS":
		return s.cmdStats(args[1:])
	case "CLUSTERS":
		return s.cmdClusters(args[1:])
	case "CORR":
		return s.cmdCorr(args[1:])
	case "REPAIR":
		return s.cmdRepair(args[1:])
	case "RSTAT":
		return s.cmdRepairStat(args[1:])
	case "RFIX":
		return s.cmdRepairFix(args[1:])
	case "REPLSTAT":
		return s.cmdReplStat(args[1:])
	case "BACKUP":
		return s.cmdBackup(args[1:])
	case "BSTAT":
		return s.cmdBackupStat(args[1:])
	case "TOPO":
		return s.cmdTopo(args[1:])
	case "SEMISYNC":
		return s.cmdSemiSync(cs, args[1:])
	case "MIGSTART":
		return s.cmdMigStart(args[1:])
	case "MIGDUMP":
		return s.cmdMigDump(args[1:])
	case "MIGAPPLY":
		return s.cmdMigApply(cs, args[1:])
	case "MIGFENCE":
		return s.cmdMigFence(args[1:])
	case "MIGABORT":
		return s.cmdMigAbort(args[1:])
	case "MIGTAKE":
		return s.cmdMigTake(args[1:])
	case "MIGFLIP":
		return s.cmdMigFlip(args[1:])
	default:
		return errValue("ERR unknown command '" + cmd + "'")
	}
}

func parseNanos(s string) (time.Time, error) {
	ns, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(0, ns).UTC(), nil
}

func (s *Server) cmdSet(cs *connState, args []string) Value {
	if len(args) != 3 {
		return errValue("ERR usage: SET key value unixnanos")
	}
	t, err := parseNanos(args[2])
	if err != nil {
		return errValue("ERR bad timestamp: " + err.Error())
	}
	seq, err := s.store.SetWithSeq(args[0], args[1], t)
	if err != nil {
		return errValue("ERR " + err.Error())
	}
	cs.lastWriteSeq = seq
	return simple("OK")
}

func (s *Server) cmdMSet(cs *connState, args []string) Value {
	if len(args) == 0 || len(args)%3 != 0 {
		return errValue("ERR usage: MSET key value unixnanos [key value unixnanos ...]")
	}
	muts := make([]ttkv.Mutation, 0, len(args)/3)
	for i := 0; i < len(args); i += 3 {
		t, err := parseNanos(args[i+2])
		if err != nil {
			return errValue("ERR bad timestamp: " + err.Error())
		}
		muts = append(muts, ttkv.Mutation{Key: args[i], Value: args[i+1], Time: t})
	}
	applied, lastSeq, err := s.store.ApplyWithSeq(muts)
	cs.lastWriteSeq = lastSeq
	if err != nil {
		if applied > 0 {
			// A mid-batch persistence failure leaves a prefix applied; the
			// client must learn exactly how much persisted, not guess.
			return errValue(fmt.Sprintf("%s %d %s", wireCodePartial, applied, err.Error()))
		}
		return errValue("ERR " + err.Error())
	}
	return intValue(int64(applied))
}

func (s *Server) cmdDel(cs *connState, args []string) Value {
	if len(args) != 2 {
		return errValue("ERR usage: DEL key unixnanos")
	}
	t, err := parseNanos(args[1])
	if err != nil {
		return errValue("ERR bad timestamp: " + err.Error())
	}
	seq, err := s.store.DeleteWithSeq(args[0], t)
	if err != nil {
		return errValue("ERR " + err.Error())
	}
	cs.lastWriteSeq = seq
	return simple("OK")
}

func (s *Server) cmdGet(args []string) Value {
	if len(args) != 1 {
		return errValue("ERR usage: GET key")
	}
	v, ok := s.store.Get(args[0])
	if !ok {
		return nilValue()
	}
	return bulk(v)
}

func (s *Server) cmdGetAt(args []string) Value {
	if len(args) != 2 {
		return errValue("ERR usage: GETAT key unixnanos")
	}
	t, err := parseNanos(args[1])
	if err != nil {
		return errValue("ERR bad timestamp: " + err.Error())
	}
	v, err := s.store.GetAt(args[0], t)
	if err != nil {
		if errors.Is(err, ttkv.ErrNoKey) || errors.Is(err, ttkv.ErrNoVersion) {
			return nilValue()
		}
		return errValue("ERR " + err.Error())
	}
	return versionValue(v)
}

func versionValue(v ttkv.Version) Value {
	return array(bulkInt(v.Time.UnixNano()), bulkBool(v.Deleted), bulk(v.Value))
}

func (s *Server) cmdHist(args []string) Value {
	if len(args) != 1 {
		return errValue("ERR usage: HIST key")
	}
	hist, err := s.store.History(args[0])
	if err != nil {
		if errors.Is(err, ttkv.ErrNoKey) {
			return array()
		}
		return errValue("ERR " + err.Error())
	}
	out := make([]Value, len(hist))
	for i, v := range hist {
		out[i] = versionValue(v)
	}
	return array(out...)
}

func (s *Server) cmdKeys(args []string) Value {
	if len(args) != 0 {
		return errValue("ERR usage: KEYS")
	}
	keys := s.store.Keys()
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = bulk(k)
	}
	return array(out...)
}

func (s *Server) cmdModCount(args []string) Value {
	if len(args) != 1 {
		return errValue("ERR usage: MODCOUNT key")
	}
	return intValue(int64(s.store.ModCount(args[0])))
}

func (s *Server) cmdModTimes(args []string) Value {
	if len(args) == 0 {
		return errValue("ERR usage: MODTIMES key [key...]")
	}
	times := s.store.ModTimes(args)
	out := make([]Value, len(times))
	for i, t := range times {
		out[i] = bulkInt(t.UnixNano())
	}
	return array(out...)
}

// errAnalyticsDisabled is the reply to CLUSTERS/CORR when the server has
// no engine attached (ttkvd run with -recluster-interval 0).
const errAnalyticsDisabled = "ERR analytics disabled (run ttkvd with -recluster-interval > 0)"

// cmdClusters serves the engine's last published clustering: a snapshot
// with bounded staleness (one recluster interval plus any still-open
// windows), never a recluster on the request path. Reply shape:
//
//	*N+1
//	  :version                      publish counter, for change polling
//	  *3+k per cluster: :modcount, :lastmodified-unixnanos (0 = never),
//	                    then k bulk member keys
//
// An optional minsize argument filters to clusters with at least that
// many member keys (2 = the paper's multi-key clusters).
func (s *Server) cmdClusters(args []string) Value {
	if s.analytics == nil {
		return errValue(errAnalyticsDisabled)
	}
	if len(args) > 1 {
		return errValue("ERR usage: CLUSTERS [minsize]")
	}
	minSize := 0
	if len(args) == 1 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return errValue("ERR bad minsize: " + args[0])
		}
		minSize = n
	}
	clusters, version := s.analytics.Snapshot()
	out := make([]Value, 1, len(clusters)+1)
	out[0] = intValue(int64(version))
	for i := range clusters {
		cl := &clusters[i]
		if cl.Size() < minSize {
			continue
		}
		cv := make([]Value, 0, 2+len(cl.Keys))
		var lm int64
		if !cl.LastModified.IsZero() {
			lm = cl.LastModified.UnixNano()
		}
		cv = append(cv, intValue(int64(cl.ModCount)), intValue(lm))
		for _, k := range cl.Keys {
			cv = append(cv, bulk(k))
		}
		out = append(out, array(cv...))
	}
	return array(out...)
}

// cmdCorr serves the live pairwise correlation of two keys, reflecting
// every closed co-modification group (no recluster needed). The reply is
// a bulk string holding the float in Go 'g' format, in [0, 2].
func (s *Server) cmdCorr(args []string) Value {
	if s.analytics == nil {
		return errValue(errAnalyticsDisabled)
	}
	if len(args) != 2 {
		return errValue("ERR usage: CORR keyA keyB")
	}
	corr := s.analytics.Correlation(args[0], args[1])
	return bulk(strconv.FormatFloat(corr, 'g', -1, 64))
}

func (s *Server) cmdStats(args []string) Value {
	if len(args) != 0 {
		return errValue("ERR usage: STATS")
	}
	st := s.store.Stats()
	return array(
		intValue(int64(st.Keys)),
		intValue(int64(st.Writes)),
		intValue(int64(st.Deletes)),
		intValue(int64(st.Reads)),
		intValue(int64(st.Versions)),
		intValue(st.ApproxBytes),
	)
}
