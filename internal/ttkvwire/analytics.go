package ttkvwire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"strconv"
	"time"

	"ocasta/internal/core"
	"ocasta/internal/ttkv"
)

// AnalyticsDrainer feeds one analytics engine from the replication
// streams of every node in a slot-partitioned cluster, producing
// globally-correct CLUSTERS/CORR on whichever node runs it: each drain
// round pulls every peer's new records (resumable per-peer cursors — a
// record is pushed exactly once), merges them by event time across
// peers, and pushes the merged order into the engine. This is how a
// cluster gets byte-identical analytics to a single node fed the same
// workload: windows that span node boundaries reassemble because the
// events are re-interleaved chronologically before windowing, which a
// per-node PairStats.Merge alone cannot do once a co-occurrence window
// straddles two nodes' keyspaces.
//
// The drainer attaches with an observer SYNC handshake (replica ID "-"),
// so it is never counted as a replica by the primaries' semi-sync gates
// and never acks.
//
// Writes are idempotent per (key, timestamp) cluster-wide, and the
// drainer enforces exactly that: a (key, timestamp) pair is pushed into
// the engine once no matter how many streams carry it. Slot migration
// re-mints the moved records on the target (they stay in the source's
// history too), so without this dedup every migrated version would
// count twice.
//
// Residual caveat: records written on peer A after A was drained but
// before peer B was drained in the same round arrive one round late,
// with timestamps possibly older than B's already-pushed tail. The
// engine's reorder horizon absorbs disorder up to roughly the drain
// interval; keep the interval comfortably below the horizon for exact
// grouping under live load (or drain once after the workload quiesces,
// as the equivalence tests do).
type AnalyticsDrainer struct {
	cfg     AnalyticsDrainerConfig
	cursors map[string]*drainCursor
	// pushed dedupes by (key, timestamp) across streams and rounds: a
	// migrated record appears in both the source's and the target's
	// history, but must feed the engine once.
	pushed map[drainKey]struct{}
}

// drainKey identifies a write cluster-wide: mutations are idempotent
// per (key, timestamp).
type drainKey struct {
	key   string
	nanos int64
}

// AnalyticsDrainerConfig configures an AnalyticsDrainer.
type AnalyticsDrainerConfig struct {
	// Engine receives the merged event stream. The drainer must be its
	// only feed (do not also attach it as a store observer, or local
	// events would be counted twice).
	Engine *core.Engine
	// Peers are the nodes to drain — every primary in the cluster,
	// including this node's own address when run inside a node.
	Peers []string
	// DialTimeout bounds each round's dial per peer (default 5s).
	DialTimeout time.Duration
	// ReadTimeout bounds each frame read (default 10s).
	ReadTimeout time.Duration
	// OnRestart, if set, runs after a peer incarnation change forced the
	// engine to reset (before the cursors are zeroed for a full refeed).
	OnRestart func()
	// Logf, when set, receives progress/diagnostic lines.
	Logf func(format string, args ...any)
}

// drainCursor is the per-peer resume point.
type drainCursor struct {
	runID string
	seq   uint64
}

// drainEntry tags a record with its peer index for a stable cross-peer
// time merge.
type drainEntry struct {
	rec  ttkv.ReplRecord
	peer int
}

// NewAnalyticsDrainer validates cfg and returns a drainer. Call
// DrainOnce per round, or Run for a self-timed loop.
func NewAnalyticsDrainer(cfg AnalyticsDrainerConfig) (*AnalyticsDrainer, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("ttkvwire: analytics drainer needs an engine")
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("ttkvwire: analytics drainer needs at least one peer")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	return &AnalyticsDrainer{
		cfg:     cfg,
		cursors: make(map[string]*drainCursor, len(cfg.Peers)),
		pushed:  make(map[drainKey]struct{}),
	}, nil
}

func (d *AnalyticsDrainer) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// DrainOnce pulls every peer's records past its cursor, merges them by
// event time, and pushes them into the engine. A peer incarnation change
// (FULLRESYNC against a non-zero cursor) resets the engine and all
// cursors, then refeeds from scratch within the same call. Unreachable
// peers are skipped (their cursors keep their place); the first round
// that reaches them pulls their backlog.
func (d *AnalyticsDrainer) DrainOnce(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		var entries []drainEntry
		advances := make(map[string]drainCursor, len(d.cfg.Peers))
		restart := false
		for i, addr := range d.cfg.Peers {
			if err := ctx.Err(); err != nil {
				return err
			}
			cur := drainCursor{}
			if c := d.cursors[addr]; c != nil {
				cur = *c
			}
			recs, newCur, full, err := d.fetchPeer(addr, cur)
			if err != nil {
				d.logf("analytics drainer: %s: %v (will catch up next round)", addr, err)
				continue
			}
			if full && cur.seq > 0 {
				// The peer restarted with a new incarnation: its seq space
				// reset, so every cursor (and the engine) is invalid.
				d.logf("analytics drainer: %s restarted (run %s); refeeding all peers", addr, newCur.runID)
				restart = true
				break
			}
			for _, r := range recs {
				entries = append(entries, drainEntry{rec: r, peer: i})
			}
			advances[addr] = newCur
		}
		if restart {
			d.cfg.Engine.Reset()
			if d.cfg.OnRestart != nil {
				d.cfg.OnRestart()
			}
			d.cursors = make(map[string]*drainCursor, len(d.cfg.Peers))
			d.pushed = make(map[drainKey]struct{})
			if attempt == 0 {
				continue // refeed immediately
			}
			return fmt.Errorf("ttkvwire: analytics drainer: peers kept restarting")
		}
		// Merge across peers by event time; ties break by peer order then
		// source seq, keeping the merge deterministic for a fixed peer
		// list. Within one peer, seq order == stream order already.
		sort.SliceStable(entries, func(a, b int) bool {
			ta, tb := entries[a].rec.Time, entries[b].rec.Time
			if !ta.Equal(tb) {
				return ta.Before(tb)
			}
			if entries[a].peer != entries[b].peer {
				return entries[a].peer < entries[b].peer
			}
			return entries[a].rec.Seq < entries[b].rec.Seq
		})
		for i := range entries {
			r := &entries[i].rec
			dk := drainKey{key: r.Key, nanos: r.Time.UnixNano()}
			if _, dup := d.pushed[dk]; dup {
				continue
			}
			d.pushed[dk] = struct{}{}
			d.cfg.Engine.ObserveWrite(r.Key, r.Time, r.Deleted)
		}
		// Advance cursors only after every record is safely pushed.
		for addr, cur := range advances {
			c := cur
			d.cursors[addr] = &c
		}
		return nil
	}
}

// Run drains on the given interval until the context ends, logging (not
// returning) per-round errors.
func (d *AnalyticsDrainer) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := d.DrainOnce(ctx); err != nil && ctx.Err() == nil {
				d.logf("analytics drainer: round failed: %v", err)
			}
		}
	}
}

// fetchPeer opens an observer SYNC session from the cursor, reads the
// stream until it has everything through the handshake watermark, and
// closes. full reports a FULLRESYNC handshake.
func (d *AnalyticsDrainer) fetchPeer(addr string, cur drainCursor) (recs []ttkv.ReplRecord, newCur drainCursor, full bool, err error) {
	conn, err := net.DialTimeout("tcp", addr, d.cfg.DialTimeout)
	if err != nil {
		return nil, cur, false, err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	runID := cur.runID
	if runID == "" {
		runID = "?"
	}
	if err := writeCommand(bw, "SYNC",
		strconv.FormatUint(cur.seq, 10), runID, replObserverID); err != nil {
		return nil, cur, false, err
	}
	conn.SetReadDeadline(time.Now().Add(d.cfg.ReadTimeout))
	reply, err := ReadValue(br)
	if err != nil {
		return nil, cur, false, err
	}
	if reply.Kind == KindError {
		return nil, cur, false, &RemoteError{Msg: reply.Str}
	}
	newRunID, from, _, full, err := parseSyncReply(reply)
	if err != nil {
		return nil, cur, false, err
	}
	newCur = drainCursor{runID: newRunID, seq: cur.seq}
	if full {
		if cur.seq > 0 {
			// Incarnation change: the caller resets everything.
			return nil, newCur, true, nil
		}
		newCur.seq = 0
	}
	// Read frames until the stream has covered the handshake watermark.
	// The observer never acks; the session ends when we close the conn.
	for newCur.seq < from {
		conn.SetReadDeadline(time.Now().Add(d.cfg.ReadTimeout))
		kind, payload, _, err := readReplFrame(br)
		if err != nil {
			return nil, cur, false, fmt.Errorf("reading stream: %w", err)
		}
		if kind != replFrameData {
			continue // heartbeats carry no records
		}
		for len(payload) > 0 {
			rec, n, err := ttkv.DecodeReplRecord(payload)
			if err != nil {
				return nil, cur, false, err
			}
			recs = append(recs, rec)
			newCur.seq = rec.Seq
			payload = payload[n:]
		}
	}
	return recs, newCur, full, nil
}

// DrainAnalytics performs one complete drain of the given peers into
// engine — the one-shot form the equivalence tests and benchmarks use to
// rebuild a cluster's global analytics from scratch.
func DrainAnalytics(ctx context.Context, engine *core.Engine, peers []string) error {
	d, err := NewAnalyticsDrainer(AnalyticsDrainerConfig{Engine: engine, Peers: peers})
	if err != nil {
		return err
	}
	return d.DrainOnce(ctx)
}
