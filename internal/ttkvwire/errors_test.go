package ttkvwire

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"ocasta/internal/ttkv"
)

// TestDecodeWireError pins the wire-code → typed-error mapping: clients
// must branch with errors.Is / errors.As, never by message substring.
func TestDecodeWireError(t *testing.T) {
	t.Run("readonly", func(t *testing.T) {
		err := decodeWireError("READONLY this node is a read replica")
		if !errors.Is(err, ErrReadOnly) {
			t.Fatalf("%v: want errors.Is ErrReadOnly", err)
		}
		var nl *ErrNotLeader
		if errors.As(err, &nl) {
			t.Fatalf("%v: bare READONLY must not carry a leader", err)
		}
		if errors.Is(err, ErrRetryable) {
			t.Fatalf("%v: READONLY is not retryable-as-is", err)
		}
	})
	t.Run("moved", func(t *testing.T) {
		err := decodeWireError("MOVED 10.0.0.7:7677")
		var nl *ErrNotLeader
		if !errors.As(err, &nl) || nl.Leader != "10.0.0.7:7677" {
			t.Fatalf("%v: want ErrNotLeader{Leader: 10.0.0.7:7677}", err)
		}
		// A MOVED rejection is still a read-only rejection: code that only
		// cares about "can't write here" keeps working.
		if !errors.Is(err, ErrReadOnly) {
			t.Fatalf("%v: MOVED must unwrap to ErrReadOnly", err)
		}
	})
	t.Run("retry", func(t *testing.T) {
		err := decodeWireError("RETRY semi-sync: 1 ack not received")
		if !errors.Is(err, ErrRetryable) {
			t.Fatalf("%v: want errors.Is ErrRetryable", err)
		}
		if errors.Is(err, ErrReadOnly) {
			t.Fatalf("%v: RETRY is not a read-only rejection", err)
		}
	})
	t.Run("partial", func(t *testing.T) {
		err := decodeWireError("PARTIAL 37 sink: disk on fire")
		var pa *ErrPartialApply
		if !errors.As(err, &pa) || pa.Applied != 37 || pa.Msg != "sink: disk on fire" {
			t.Fatalf("%v: want ErrPartialApply{Applied: 37}", err)
		}
		if errors.Is(err, ErrReadOnly) || errors.Is(err, ErrRetryable) {
			t.Fatalf("%v: PARTIAL is a definite outcome, not a redirect or retry cue", err)
		}
	})
	t.Run("partial-malformed-count", func(t *testing.T) {
		err := decodeWireError("PARTIAL x disk on fire")
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("%v: malformed PARTIAL must fall back to *RemoteError", err)
		}
	})
	t.Run("plain", func(t *testing.T) {
		err := decodeWireError("boom")
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "boom" {
			t.Fatalf("%v: want *RemoteError{Msg: boom}", err)
		}
		if errors.Is(err, ErrReadOnly) || errors.Is(err, ErrRetryable) {
			t.Fatalf("%v: generic errors must not match the typed sentinels", err)
		}
	})
}

// startScriptedServer answers each incoming request with the next canned
// reply, letting tests exercise client-side handling of server outcomes
// (like a mid-batch PARTIAL) that are awkward to provoke in a real store.
func startScriptedServer(t *testing.T, replies []Value) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		for _, rep := range replies {
			if _, err := ReadValue(br); err != nil {
				return
			}
			if err := WriteValue(bw, rep); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestMSetPartialAcrossChunks: a PARTIAL reply on a later chunk must be
// reported against the caller's whole batch — the chunks already
// acknowledged count into Applied.
func TestMSetPartialAcrossChunks(t *testing.T) {
	muts := make([]ttkv.Mutation, msetChunk+500)
	base := time.Now()
	for i := range muts {
		muts[i] = ttkv.Mutation{Key: "k", Value: "v", Time: base}
	}

	t.Run("partial-on-second-chunk", func(t *testing.T) {
		addr := startScriptedServer(t, []Value{
			intValue(int64(msetChunk)),
			errValue("PARTIAL 250 sink: disk on fire"),
		})
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var pa *ErrPartialApply
		if err := cl.MSet(muts); !errors.As(err, &pa) {
			t.Fatalf("MSet = %v, want *ErrPartialApply", err)
		}
		if pa.Applied != msetChunk+250 {
			t.Fatalf("Applied = %d, want %d (full first chunk plus the reported prefix)", pa.Applied, msetChunk+250)
		}
	})

	t.Run("hard-error-after-acked-chunk", func(t *testing.T) {
		addr := startScriptedServer(t, []Value{
			intValue(int64(msetChunk)),
			errValue("ERR boom"),
		})
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// Even a non-partial failure after an acknowledged chunk is a
		// partial apply of the caller's batch.
		var pa *ErrPartialApply
		if err := cl.MSet(muts); !errors.As(err, &pa) {
			t.Fatalf("MSet = %v, want *ErrPartialApply", err)
		}
		if pa.Applied != msetChunk {
			t.Fatalf("Applied = %d, want %d (the acknowledged first chunk)", pa.Applied, msetChunk)
		}
	})
}

func startPlainServer(t *testing.T) (*ttkv.Store, string) {
	t.Helper()
	store := ttkv.NewSharded(4)
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return store, ln.Addr().String()
}

// TestClientContextCancel: an already-cancelled context fails the call
// with the context's error, without touching the server.
func TestClientContextCancel(t *testing.T) {
	store, addr := startPlainServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cl.SetContext(ctx, "/c/k", "v", time.Now()); !errors.Is(err, context.Canceled) {
		t.Fatalf("SetContext on cancelled ctx: %v, want context.Canceled", err)
	}
	if _, ok := store.Get("/c/k"); ok {
		t.Fatal("cancelled write reached the store")
	}
}

// TestClientContextDeadline: a deadline fires mid-call against a server
// that never answers, and the transport error carries the context cause.
func TestClientContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // held open, never answered
		}
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := cl.PingContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PingContext against silent server: %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestClientContextFreeWrappers: the context-free methods still work and
// delegate to the context-aware core.
func TestClientContextFreeWrappers(t *testing.T) {
	store, addr := startPlainServer(t)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set("/w/k", "v", time.Now()); err != nil {
		t.Fatal(err)
	}
	if got, err := cl.Get("/w/k"); err != nil || got != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if got := primaryGet(t, store, "/w/k"); got != "v" {
		t.Fatalf("store has %q", got)
	}
	if _, err := cl.Get("/w/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v, want ErrNotFound", err)
	}
}
