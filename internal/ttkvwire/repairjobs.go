package ttkvwire

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/repair"
	"ocasta/internal/ttkv"
)

// RepairConfig bounds the server-side repair job manager.
type RepairConfig struct {
	// Workers is the per-job trial worker count (<= 1 searches
	// sequentially). Trials are dominated by sandbox latency, so the
	// default of 8 is safe even on small machines.
	Workers int
	// MaxActive bounds how many repair searches run concurrently; further
	// accepted jobs queue. Default 2.
	MaxActive int
	// MaxJobs bounds how many jobs the manager retains, running and
	// finished together. Submissions beyond it evict the oldest finished
	// job, or are rejected if every retained job is still live. Default 64.
	MaxJobs int
}

func (c RepairConfig) normalized() RepairConfig {
	if c.Workers < 1 {
		c.Workers = 8
	}
	if c.MaxActive < 1 {
		c.MaxActive = 2
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 64
	}
	return c
}

// Job states reported by RSTAT.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// repairJob is one asynchronous repair search.
type repairJob struct {
	id  string
	seq int64 // submission order, for eviction

	trialsDone  atomic.Int64
	totalTrials atomic.Int64

	mu       sync.Mutex
	state    string
	errMsg   string
	res      *repair.Result
	applying bool // an RFIX revert is in flight outside the lock
	applied  bool
}

// jobManager runs bounded asynchronous repair searches over one store.
type jobManager struct {
	cfg   RepairConfig
	store *ttkv.Store
	sem   chan struct{} // MaxActive tokens
	quit  chan struct{} // closed by Server.Close; cancels searches

	mu     sync.Mutex
	jobs   map[string]*repairJob
	nextID int64
	closed bool // set under mu before wg.Wait; submit rejects after

	wg sync.WaitGroup
}

func newJobManager(cfg RepairConfig, store *ttkv.Store) *jobManager {
	cfg = cfg.normalized()
	m := &jobManager{
		cfg:   cfg,
		store: store,
		sem:   make(chan struct{}, cfg.MaxActive),
		quit:  make(chan struct{}),
		jobs:  make(map[string]*repairJob),
	}
	return m
}

// close cancels every live search and waits for job goroutines to drain.
// The closed flag flips under mu before Wait, and submit both checks it
// and calls wg.Add under the same mutex, so Add can never race Wait (the
// sync.WaitGroup misuse rule) and no search starts after close returns.
func (m *jobManager) close() {
	m.mu.Lock()
	already := m.closed
	m.closed = true
	m.mu.Unlock()
	if !already {
		close(m.quit)
	}
	m.wg.Wait()
}

// submit registers a job and starts its search goroutine. tool and opts
// are fully prepared by the caller (the REPAIR command handler).
func (m *jobManager) submit(tool *repair.Tool, opts repair.Options) (*repairJob, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("server shutting down")
	}
	if len(m.jobs) >= m.cfg.MaxJobs && !m.evictOldestFinishedLocked() {
		return nil, fmt.Errorf("job limit reached (%d live jobs)", len(m.jobs))
	}
	m.nextID++
	job := &repairJob{id: "r" + strconv.FormatInt(m.nextID, 10), seq: m.nextID, state: JobQueued}
	m.jobs[job.id] = job

	opts.Cancel = m.quit
	opts.Workers = m.cfg.Workers
	opts.OnProgress = func(done, total int) {
		job.trialsDone.Store(int64(done))
		job.totalTrials.Store(int64(total))
	}

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case m.sem <- struct{}{}:
			defer func() { <-m.sem }()
		case <-m.quit:
			job.fail("server shutting down")
			return
		}
		job.mu.Lock()
		job.state = JobRunning
		job.mu.Unlock()
		res, err := tool.Search(opts)
		if err != nil {
			job.fail(err.Error())
			return
		}
		job.mu.Lock()
		job.state = JobDone
		job.res = res
		job.mu.Unlock()
		job.trialsDone.Store(int64(res.Trials))
		job.totalTrials.Store(int64(res.TotalTrials))
	}()
	return job, nil
}

// evictOldestFinishedLocked drops the oldest done/failed job to make room.
func (m *jobManager) evictOldestFinishedLocked() bool {
	var victim *repairJob
	for _, j := range m.jobs {
		j.mu.Lock()
		finished := j.state == JobDone || j.state == JobFailed
		j.mu.Unlock()
		if finished && (victim == nil || j.seq < victim.seq) {
			victim = j
		}
	}
	if victim == nil {
		return false
	}
	delete(m.jobs, victim.id)
	return true
}

func (m *jobManager) get(id string) (*repairJob, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (j *repairJob) fail(msg string) {
	j.mu.Lock()
	j.state = JobFailed
	j.errMsg = msg
	j.mu.Unlock()
}

// --- wire command handlers ---

// repairManager lazily builds the server's job manager.
func (s *Server) repairManager() *jobManager {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.repairs == nil {
		s.repairs = newJobManager(s.repairCfg, s.store)
		if s.closed {
			// A handler raced Close: hand out a manager that is already
			// shut down, so any submission fails fast instead of leaking
			// a search the closed server will never drain.
			close(s.repairs.quit)
			s.repairs.closed = true
		}
	}
	return s.repairs
}

// cmdRepair handles:
//
//	REPAIR app trial fixed broken [opt val ...]
//
// where trial is the UI action script joined with ";" and fixed/broken
// are the screenshot oracle markers (at least one non-empty). Options:
// strategy dfs|bfs, noclust 0|1, live 0|1 (search the engine's published
// clustering instead of re-clustering), window ns, threshold f, start ns,
// end ns, maxtrials n. Replies with the job id as a bulk string; poll it
// with RSTAT and apply the confirmed fix with RFIX.
func (s *Server) cmdRepair(args []string) Value {
	if len(args) < 4 || len(args)%2 != 0 {
		return errValue("ERR usage: REPAIR app trial fixed broken [opt val ...]")
	}
	model := apps.ModelByName(args[0])
	if model == nil {
		return errValue("ERR repair: unknown app '" + args[0] + "'")
	}
	trial := splitTrial(args[1])
	if len(trial) == 0 {
		return errValue("ERR repair: empty trial")
	}
	fixed, broken := args[2], args[3]
	if fixed == "" && broken == "" {
		return errValue("ERR repair: need a fixed and/or broken marker")
	}
	opts := repair.Options{
		Trial:  trial,
		Oracle: repair.MarkerOracle(fixed, broken),
	}
	live := false
	for i := 4; i < len(args); i += 2 {
		k, v := args[i], args[i+1]
		var err error
		switch k {
		case "strategy":
			opts.Strategy, err = repair.ParseStrategy(v)
		case "noclust":
			opts.NoClust, err = parseBoolOpt(v)
		case "live":
			live, err = parseBoolOpt(v)
		case "window":
			opts.Window, err = parseDurationNanos(v)
		case "threshold":
			opts.Threshold, err = strconv.ParseFloat(v, 64)
		case "start":
			opts.Start, err = parseOptNanos(v)
		case "end":
			opts.End, err = parseOptNanos(v)
		case "maxtrials":
			opts.MaxTrials, err = strconv.Atoi(v)
		default:
			return errValue("ERR repair: unknown option '" + k + "'")
		}
		if err != nil {
			return errValue(fmt.Sprintf("ERR repair: bad %s %q: %v", k, v, err))
		}
	}
	if live {
		if s.analytics == nil {
			return errValue(errAnalyticsDisabled)
		}
		clusters, _ := s.analytics.Snapshot()
		if len(clusters) == 0 {
			// Before the engine's first publish a live search would scan
			// an empty clustering and report a confident (and wrong)
			// "nothing to roll back"; reject instead.
			return errValue("ERR repair: live clustering has not published yet; retry or omit live")
		}
		// Search trims the store-wide snapshot to the app's keys itself.
		opts.Clusters = clusters
	}
	job, err := s.repairManager().submit(repair.NewTool(s.store, model), opts)
	if err != nil {
		return errValue("ERR repair: " + err.Error())
	}
	return bulk(job.id)
}

// cmdRepairStat handles RSTAT id. Reply:
//
//	*8
//	  $state ($queued|$running|$done|$failed)
//	  $error ("" unless failed)
//	  :trialsDone  :totalTrials  :found  :fixAtNanos
//	  *K offending cluster keys
//	  *S screenshots, each *5: :trial :cluster :atNanos $hash $rendered
func (s *Server) cmdRepairStat(args []string) Value {
	if len(args) != 1 {
		return errValue("ERR usage: RSTAT jobid")
	}
	job, ok := s.repairManager().get(args[0])
	if !ok {
		return errValue("ERR repair: no such job '" + args[0] + "'")
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	out := make([]Value, 0, 8)
	out = append(out,
		bulk(job.state), bulk(job.errMsg),
		intValue(job.trialsDone.Load()), intValue(job.totalTrials.Load()),
	)
	var found int64
	var fixAt int64
	var keys, shots []Value
	if job.res != nil {
		if job.res.Found {
			found = 1
			if !job.res.FixAt.IsZero() {
				fixAt = job.res.FixAt.UnixNano()
			}
		}
		keys = make([]Value, len(job.res.Offending.Keys))
		for i, k := range job.res.Offending.Keys {
			keys[i] = bulk(k)
		}
		shots = make([]Value, len(job.res.Screenshots))
		for i := range job.res.Screenshots {
			sc := &job.res.Screenshots[i]
			shots[i] = array(
				intValue(int64(sc.Trial)), intValue(int64(sc.Cluster)),
				intValue(sc.At.UnixNano()), bulk(sc.Hash), bulk(sc.Rendered),
			)
		}
	}
	out = append(out, intValue(found), intValue(fixAt), array(keys...), array(shots...))
	return array(out...)
}

// cmdRepairFix handles RFIX id applyAtNanos: it atomically rolls the
// job's offending cluster back to the fixed historical values (the user
// confirmed the screenshot) and replies with the number of reverted keys.
func (s *Server) cmdRepairFix(args []string) Value {
	if len(args) != 2 {
		return errValue("ERR usage: RFIX jobid unixnanos")
	}
	at, err := parseNanos(args[1])
	if err != nil || at.IsZero() {
		return errValue("ERR bad timestamp: " + args[1])
	}
	job, ok := s.repairManager().get(args[0])
	if !ok {
		return errValue("ERR repair: no such job '" + args[0] + "'")
	}
	// Validate and claim under the lock, but run the revert outside it:
	// RevertCluster can block on group-commit backpressure (stalled disk),
	// and holding job.mu there would wedge RSTAT of this job — and, via
	// the manager's eviction scan, every other repair command.
	job.mu.Lock()
	switch {
	case job.state != JobDone:
		job.mu.Unlock()
		return errValue("ERR repair: job is " + job.state + ", not done")
	case !job.res.Found:
		job.mu.Unlock()
		return errValue("ERR repair: search found no fix")
	case len(job.res.Offending.Keys) == 0:
		// Found with no offending cluster: the symptom was never visible,
		// so there is nothing to roll back (same guard as repair.ApplyFix).
		job.mu.Unlock()
		return errValue("ERR repair: no fix to apply (nothing was broken)")
	case job.applied || job.applying:
		job.mu.Unlock()
		return errValue("ERR repair: fix already applied")
	}
	job.applying = true
	keys, fixAt := job.res.Offending.Keys, job.res.FixAt
	job.mu.Unlock()

	n, err := s.store.RevertCluster(keys, fixAt, at)

	job.mu.Lock()
	job.applying = false
	if err == nil {
		job.applied = true
	}
	job.mu.Unlock()
	if err != nil {
		return errValue("ERR repair: applying fix: " + err.Error())
	}
	return intValue(int64(n))
}

// trialSep joins/splits UI actions on the wire; actions containing it are
// not representable (none of the catalog's are).
const trialSep = ";"

func splitTrial(s string) []string {
	var out []string
	for _, a := range strings.Split(s, trialSep) {
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}

// parseBoolOpt parses a strict wire boolean: "1" or "0" only, so a
// malformed value is rejected instead of silently meaning false.
func parseBoolOpt(s string) (bool, error) {
	switch s {
	case "1":
		return true, nil
	case "0":
		return false, nil
	}
	return false, fmt.Errorf("want 0 or 1")
}

// parseOptNanos parses a UnixNano timestamp where 0 means "unset".
func parseOptNanos(s string) (time.Time, error) {
	ns, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, err
	}
	if ns == 0 {
		return time.Time{}, nil
	}
	return time.Unix(0, ns).UTC(), nil
}

// parseDurationNanos parses a non-negative duration in nanoseconds.
func parseDurationNanos(s string) (time.Duration, error) {
	ns, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if ns < 0 {
		return 0, fmt.Errorf("negative duration")
	}
	return time.Duration(ns), nil
}

// sortedJobIDs is used by tests to inspect the manager deterministically.
func (m *jobManager) sortedJobIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
