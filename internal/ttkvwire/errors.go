package ttkvwire

import (
	"errors"
	"strconv"
	"strings"
)

// Typed wire errors. Server error replies start with a machine-readable
// code token; the client decodes the code back into one of these types so
// redirect and retry logic can match on errors.Is/errors.As instead of
// substrings:
//
//	READONLY            the node is a read replica and the leader is
//	                    unknown → errors.Is(err, ErrReadOnly)
//	MOVED <addr>        the node is not the leader; <addr> is →
//	                    errors.As(err, &notLeader) and, because a MOVED
//	                    node is necessarily read-only,
//	                    errors.Is(err, ErrReadOnly) too
//	RETRY <detail>      a transient server condition (semi-sync ack
//	                    timeout, failover in progress) → errors.Is(err,
//	                    ErrRetryable); the command may or may not have
//	                    taken effect, so retries must be idempotent
//	PARTIAL <n> <detail> a batch half-applied: exactly n leading
//	                    mutations took effect before the failure →
//	                    errors.As(err, &partial) for the count
//	ERR <detail>        anything else → *RemoteError
var (
	// ErrReadOnly marks writes rejected by a read-only replica. Redirect
	// to the leader (errors.As with *ErrNotLeader for its address) or
	// re-discover the topology (Client.Topology on any peer).
	ErrReadOnly = errors.New("ttkvwire: node is a read-only replica")

	// ErrRetryable marks transient server conditions: the request was
	// understood but cannot be acknowledged right now. Callers should
	// back off and retry; for writes, note that a semi-sync RETRY means
	// the write applied locally but was not replica-acknowledged within
	// the timeout — it is uncertain, not rejected.
	ErrRetryable = errors.New("ttkvwire: transient server condition")
)

// ErrNotLeader is a redirect: the addressed node is not the leader, and
// Leader (when non-empty) is where writes should go. It unwraps to
// ErrReadOnly — a redirecting node is by definition not writable — so
// generic "can't write here" handling needs only errors.Is(err,
// ErrReadOnly), while redirect logic extracts the address with errors.As.
type ErrNotLeader struct{ Leader string }

// Error implements error.
func (e *ErrNotLeader) Error() string {
	if e.Leader == "" {
		return "ttkvwire: node is not the leader"
	}
	return "ttkvwire: node is not the leader (leader is " + e.Leader + ")"
}

// Unwrap makes errors.Is(err, ErrReadOnly) true for redirects.
func (e *ErrNotLeader) Unwrap() error { return ErrReadOnly }

// readOnlyError is a READONLY reply with its server-side detail text.
type readOnlyError struct{ detail string }

func (e *readOnlyError) Error() string {
	if e.detail == "" {
		return ErrReadOnly.Error()
	}
	return ErrReadOnly.Error() + ": " + e.detail
}

func (e *readOnlyError) Unwrap() error { return ErrReadOnly }

// retryableError is a RETRY reply with its server-side detail text.
type retryableError struct{ detail string }

func (e *retryableError) Error() string {
	if e.detail == "" {
		return ErrRetryable.Error()
	}
	return ErrRetryable.Error() + ": " + e.detail
}

func (e *retryableError) Unwrap() error { return ErrRetryable }

// ErrPartialApply reports a batch write that half-applied: exactly
// Applied leading mutations took effect (and persisted) before the
// failure described by Msg. The client's MSet accumulates the count
// across chunks, so Applied indexes into the caller's original batch —
// muts[:Applied] are durable, muts[Applied:] are not.
type ErrPartialApply struct {
	Applied int
	Msg     string
}

// Error implements error.
func (e *ErrPartialApply) Error() string {
	return "ttkvwire: batch partially applied (" + strconv.Itoa(e.Applied) + " mutations): " + e.Msg
}

// Wire error code tokens (the first word of an error reply).
const (
	wireCodeReadOnly = "READONLY"
	wireCodeMoved    = "MOVED"
	wireCodeRetry    = "RETRY"
	wireCodePartial  = "PARTIAL"
)

// decodeWireError turns a server error reply string into the matching
// typed error. Unknown codes (including the generic "ERR ...") stay
// *RemoteError.
func decodeWireError(msg string) error {
	code, rest, _ := strings.Cut(msg, " ")
	switch code {
	case wireCodeReadOnly:
		return &readOnlyError{detail: rest}
	case wireCodeMoved:
		leader, _, _ := strings.Cut(rest, " ")
		return &ErrNotLeader{Leader: leader}
	case wireCodeRetry:
		return &retryableError{detail: rest}
	case wireCodePartial:
		countStr, detail, _ := strings.Cut(rest, " ")
		n, err := strconv.Atoi(countStr)
		if err != nil || n < 0 {
			return &RemoteError{Msg: msg} // malformed count: keep the raw reply
		}
		return &ErrPartialApply{Applied: n, Msg: detail}
	default:
		return &RemoteError{Msg: msg}
	}
}

// readOnlyReply builds the error reply for a write on a read-only node:
// a MOVED redirect when the leader is known, bare READONLY otherwise.
func readOnlyReply(leader string) Value {
	if leader != "" {
		return errValue(wireCodeMoved + " " + leader)
	}
	return errValue(wireCodeReadOnly + " this node is a read replica; send writes to the primary")
}

// retryReply builds a RETRY error reply.
func retryReply(detail string) Value {
	return errValue(wireCodeRetry + " " + detail)
}
