// Package ttkvwire provides network access to a ttkv.Store: a compact
// RESP-inspired wire protocol, a server that exposes a store over TCP (the
// role Redis played in the paper's deployment), and a client used by the
// loggers and the repair tool.
//
// Requests are arrays of bulk strings; responses are simple strings,
// errors, integers, bulk strings (possibly nil), or arrays, exactly as in
// RESP2. The protocol is self-framing, so values may contain any bytes.
package ttkvwire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol errors.
var (
	ErrProtocol = errors.New("ttkvwire: protocol error")
	// ErrTooLarge guards length prefixes so a corrupt or hostile peer
	// cannot force a giant allocation.
	ErrTooLarge = errors.New("ttkvwire: declared length too large")
)

const (
	maxBulkLen  = 8 << 20
	maxArrayLen = 1 << 20
)

// Kind discriminates wire values.
type Kind uint8

// Wire value kinds.
const (
	KindSimple Kind = iota + 1 // +OK style status line
	KindError                  // -ERR style error line
	KindInt                    // :42
	KindBulk                   // $5\r\nhello
	KindNil                    // $-1
	KindArray                  // *2 ...
)

// Value is one protocol value.
type Value struct {
	Kind  Kind
	Str   string // Simple, Error, Bulk payload
	Int   int64
	Array []Value
}

// Convenience constructors.
func simple(s string) Value   { return Value{Kind: KindSimple, Str: s} }
func errValue(s string) Value { return Value{Kind: KindError, Str: s} }
func intValue(n int64) Value  { return Value{Kind: KindInt, Int: n} }
func bulk(s string) Value     { return Value{Kind: KindBulk, Str: s} }
func nilValue() Value         { return Value{Kind: KindNil} }
func array(vs ...Value) Value { return Value{Kind: KindArray, Array: vs} }
func bulkInt(n int64) Value   { return bulk(strconv.FormatInt(n, 10)) }
func bulkBool(b bool) Value   { return bulk(boolStr(b)) }
func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// WriteValue serializes v to w.
func WriteValue(w *bufio.Writer, v Value) error {
	switch v.Kind {
	case KindSimple:
		_, err := fmt.Fprintf(w, "+%s\r\n", v.Str)
		return err
	case KindError:
		_, err := fmt.Fprintf(w, "-%s\r\n", v.Str)
		return err
	case KindInt:
		_, err := fmt.Fprintf(w, ":%d\r\n", v.Int)
		return err
	case KindBulk:
		if _, err := fmt.Fprintf(w, "$%d\r\n", len(v.Str)); err != nil {
			return err
		}
		if _, err := w.WriteString(v.Str); err != nil {
			return err
		}
		_, err := w.WriteString("\r\n")
		return err
	case KindNil:
		_, err := w.WriteString("$-1\r\n")
		return err
	case KindArray:
		if _, err := fmt.Fprintf(w, "*%d\r\n", len(v.Array)); err != nil {
			return err
		}
		for _, el := range v.Array {
			if err := WriteValue(w, el); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrProtocol, v.Kind)
	}
}

// ReadValue parses one protocol value from r.
func ReadValue(r *bufio.Reader) (Value, error) {
	line, err := readLine(r)
	if err != nil {
		return Value{}, err
	}
	if len(line) == 0 {
		return Value{}, fmt.Errorf("%w: empty line", ErrProtocol)
	}
	payload := line[1:]
	switch line[0] {
	case '+':
		return simple(payload), nil
	case '-':
		return errValue(payload), nil
	case ':':
		n, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad integer %q", ErrProtocol, payload)
		}
		return intValue(n), nil
	case '$':
		n, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, payload)
		}
		if n == -1 {
			return nilValue(), nil
		}
		if n < 0 || n > maxBulkLen {
			return Value{}, fmt.Errorf("%w: bulk length %d", ErrTooLarge, n)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, fmt.Errorf("%w: short bulk read: %v", ErrProtocol, err)
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk not CRLF terminated", ErrProtocol)
		}
		return bulk(string(buf[:n])), nil
	case '*':
		n, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad array length %q", ErrProtocol, payload)
		}
		if n < 0 || n > maxArrayLen {
			return Value{}, fmt.Errorf("%w: array length %d", ErrTooLarge, n)
		}
		out := Value{Kind: KindArray, Array: make([]Value, 0, n)}
		for i := int64(0); i < n; i++ {
			el, err := ReadValue(r)
			if err != nil {
				return Value{}, err
			}
			out.Array = append(out.Array, el)
		}
		return out, nil
	default:
		return Value{}, fmt.Errorf("%w: unexpected type byte %q", ErrProtocol, line[0])
	}
}

// readLine reads a CRLF-terminated line, rejecting bare LF.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return "", fmt.Errorf("%w: line not CRLF terminated", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

// writeCommandBuf serializes a request as an array of bulk strings into w
// without flushing, so callers can pipeline several commands into one
// network write.
func writeCommandBuf(w *bufio.Writer, args ...string) error {
	vs := make([]Value, len(args))
	for i, a := range args {
		vs[i] = bulk(a)
	}
	return WriteValue(w, array(vs...))
}

// writeCommand sends a request as an array of bulk strings.
func writeCommand(w *bufio.Writer, args ...string) error {
	if err := writeCommandBuf(w, args...); err != nil {
		return err
	}
	return w.Flush()
}
