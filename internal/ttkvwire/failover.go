package ttkvwire

import (
	"context"
	"errors"
	"sync"
	"syscall"
	"time"

	"ocasta/internal/ttkv"
)

// NodeConfig configures one failover-managed cluster member: a Server
// plus the state machine that promotes, demotes, and fences it.
type NodeConfig struct {
	// Store is the node's local store; Server the wire server in front of
	// it. Both required. The Node takes over the server's replication
	// role management (EnableReplication / SetReadOnly / topology).
	Store  *ttkv.Store
	Server *Server

	// Self is this node's address as peers and clients reach it
	// (advertised in TOPO and MOVED redirects). Required.
	Self string
	// Peers are the other cluster members' addresses (not including
	// Self). Failure detection, election, and fencing all run against
	// this static member set.
	Peers []string

	// Primary starts the node as the leader; ReplLog must then be the
	// log already attached to Store (epoch is seeded to 1 if unset).
	// Otherwise the node starts as a replica of PrimaryAddr — or, when
	// PrimaryAddr is empty, discovers the leader by probing Peers.
	Primary     bool
	ReplLog     *ttkv.ReplLog
	PrimaryAddr string

	// GroupCommit is the initial primary's AOF appender, if any. On
	// demotion it is closed permanently: a demoted node takes a full
	// resync from the new leader and must not reuse an appender whose
	// generation counter has outrun a fresh ReplLog's (records would fan
	// out before they were durable). Re-promotions therefore run with an
	// in-memory log.
	GroupCommit *ttkv.GroupCommit

	// LeaseInterval is the failure-detection lease: a replica that has
	// not heard from its primary (handshake, data, or heartbeat frame)
	// for 2 lease intervals starts an election. The node ticks at half
	// the lease. Default 500ms.
	LeaseInterval time.Duration

	// Replication tunes the primary role; its HeartbeatInterval defaults
	// to LeaseInterval/2 so an idle primary refreshes leases twice per
	// interval. SemiSync is applied to the server whenever this node is
	// primary.
	Replication ReplicationConfig
	SemiSync    SemiSyncConfig

	// OnReset is forwarded to the replica client: it runs after a full
	// resync has reset the local store (e.g. to reset an analytics
	// engine).
	OnReset func()
	// Logf, when set, receives role-transition and election messages.
	Logf func(format string, args ...any)
}

// Node runs the failover state machine for one cluster member. Construct
// with StartNode; Stop tears it down (the Server is left in its current
// role and is closed separately).
type Node struct {
	cfg  NodeConfig
	tick time.Duration

	mu      sync.Mutex
	role    string // RolePrimary or RoleReplica
	epoch   uint64 // highest epoch this node has observed
	rl      *ttkv.ReplLog
	rc      *ReplicaClient
	leader  string            // current leader address ("" unknown)
	gc      *ttkv.GroupCommit // initial AOF appender; nil once closed
	rundown bool              // Stop has begun; refuse new transitions

	// electDefer counts consecutive elections held open because a peer's
	// fate was unknown; see electPatience. Touched only by the run
	// goroutine, so it needs no lock.
	electDefer int

	stop chan struct{}
	done chan struct{}
}

// StartNode validates cfg, puts the server in its starting role, and
// starts the failover loop.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Store == nil || cfg.Server == nil {
		return nil, errors.New("ttkvwire: node config needs a store and a server")
	}
	if cfg.Self == "" {
		return nil, errors.New("ttkvwire: node config needs a self address")
	}
	if cfg.Primary && cfg.ReplLog == nil {
		return nil, errors.New("ttkvwire: a primary node needs its attached ReplLog")
	}
	if cfg.LeaseInterval <= 0 {
		cfg.LeaseInterval = 500 * time.Millisecond
	}
	if cfg.Replication.HeartbeatInterval <= 0 {
		cfg.Replication.HeartbeatInterval = cfg.LeaseInterval / 2
	}
	n := &Node{
		cfg:  cfg,
		tick: cfg.LeaseInterval / 2,
		gc:   cfg.GroupCommit,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	srv := cfg.Server
	srv.SetAdvertise(cfg.Self)
	srv.SetTopologySource(n.topology)
	if cfg.Primary {
		if cfg.ReplLog.Epoch() == 0 {
			cfg.ReplLog.SetEpoch(1)
		}
		n.role = RolePrimary
		n.epoch = cfg.ReplLog.Epoch()
		n.rl = cfg.ReplLog
		n.leader = cfg.Self
		srv.EnableReplication(cfg.ReplLog, cfg.Replication)
		srv.SetSemiSync(cfg.SemiSync)
		srv.SetReadOnly(false)
	} else {
		n.role = RoleReplica
		n.leader = cfg.PrimaryAddr
		srv.SetReadOnly(true)
		srv.SetLeaderHint(cfg.PrimaryAddr)
		if cfg.PrimaryAddr != "" {
			rc, err := n.startReplica(cfg.PrimaryAddr)
			if err != nil {
				return nil, err
			}
			n.rc = rc
		}
	}
	go n.run()
	return n, nil
}

// Stop ends the failover loop and any replica client it runs. The node's
// server keeps serving in whatever role it last held.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.rundown {
		n.mu.Unlock()
		<-n.done
		return
	}
	n.rundown = true
	rc := n.rc
	n.mu.Unlock()
	close(n.stop)
	<-n.done
	if rc != nil {
		rc.Stop()
	}
}

// Role returns the node's current role and epoch.
func (n *Node) Role() (role string, epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.epoch
}

// Leader returns the address the node currently believes is the leader
// (its own when primary, "" when unknown).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// ReplicaStatus reports the stream status of the node's current replica
// feed; ok is false while the node is primary (or has no feed yet).
func (n *Node) ReplicaStatus() (st ReplicaStatus, ok bool) {
	n.mu.Lock()
	rc := n.rc
	n.mu.Unlock()
	if rc == nil {
		return ReplicaStatus{}, false
	}
	return rc.ReplicaStatus(), true
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// topology serves TOPO for this node.
func (n *Node) topology() Topology {
	n.mu.Lock()
	role := n.role
	epoch := n.epoch
	rl := n.rl
	rc := n.rc
	leader := n.leader
	n.mu.Unlock()
	// A healthy replica has never stood for election, so its own epoch
	// may still be 0; the one learned from the primary's SYNC handshake
	// is the current term.
	if role == RoleReplica && rc != nil {
		if e := rc.PrimaryEpoch(); e > epoch {
			epoch = e
		}
	}
	_, _, runID := n.cfg.Server.replState()
	t := Topology{
		Role:   role,
		Epoch:  epoch,
		RunID:  runID,
		Self:   n.cfg.Self,
		Leader: leader,
		Peers:  append([]string(nil), n.cfg.Peers...),
	}
	t.AppliedSeq = n.cfg.Store.CurrentSeq()
	t.DurableSeq = t.AppliedSeq
	if role == RolePrimary && rl != nil {
		t.DurableSeq = rl.DurableSeq()
	}
	return t
}

// run is the failover loop: every tick (half a lease) the node checks its
// role's health condition and transitions when the evidence demands it.
func (n *Node) run() {
	defer close(n.done)
	ticker := time.NewTicker(n.tick)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		role := n.role
		rc := n.rc
		n.mu.Unlock()
		if role == RolePrimary {
			n.checkFenced()
			continue
		}
		// Replica: a live lease means a healthy primary; nothing to do.
		if rc != nil && time.Since(rc.LastContact()) <= 2*n.cfg.LeaseInterval {
			n.electDefer = 0
			continue
		}
		n.elect(rc)
	}
}

// peerView is one probe result.
type peerView struct {
	addr string
	topo Topology
	err  error
	// down means the peer is confirmed dead (connection refused: the
	// host answered, nothing listens there). A timeout is NOT down —
	// the peer may be alive but slow, which elections must treat as
	// unknown rather than absent.
	down bool
}

// probePeers asks every peer for its topology, in parallel, bounded by
// one lease interval per probe. A dead local peer refuses instantly, so
// the generous timeout only costs time against hung or partitioned
// hosts.
func (n *Node) probePeers() []peerView {
	views := make([]peerView, len(n.cfg.Peers))
	var wg sync.WaitGroup
	for i, addr := range n.cfg.Peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.LeaseInterval)
			defer cancel()
			views[i] = peerView{addr: addr}
			cl, err := DialContext(ctx, addr)
			if err != nil {
				views[i].err = err
				views[i].down = errors.Is(err, syscall.ECONNREFUSED)
				return
			}
			defer cl.Close()
			views[i].topo, views[i].err = cl.TopologyContext(ctx)
			if views[i].err == nil && views[i].topo.Self == "" {
				// A peer that does not advertise (legacy configuration) is
				// identified by the address we reached it at.
				views[i].topo.Self = addr
			}
		}(i, addr)
	}
	wg.Wait()
	return views
}

// checkFenced is the primary's self-check: if any peer claims the
// primary role at a higher epoch — or at the same epoch with a
// lower-sorting address, the symmetric tiebreak for simultaneous
// promotions — this node has been superseded and demotes itself. This is
// the fencing rule: a revived stale primary discovers the newer leader
// here and rejoins as its replica.
func (n *Node) checkFenced() {
	n.mu.Lock()
	myEpoch := n.epoch
	n.mu.Unlock()
	for _, v := range n.probePeers() {
		if v.err != nil || v.topo.Role != RolePrimary {
			continue
		}
		if v.topo.Epoch > myEpoch || (v.topo.Epoch == myEpoch && v.topo.Self < n.cfg.Self) {
			n.logf("failover: fenced by %s (epoch %d >= ours %d); demoting", v.topo.Self, v.topo.Epoch, myEpoch)
			n.demote(v.topo.Self, v.topo.Epoch)
			return
		}
	}
}

// electPatience is how many consecutive election attempts tolerate an
// unknown-state peer (unreachable but not confirmed down) before the
// node promotes anyway. A peer that merely missed one probe — load
// spike, GC pause — answers the retry; promoting past a live peer that
// holds more acked writes would discard them on its forced resync.
const electPatience = 3

// elect runs when the lease to the primary has expired (or the node has
// no primary at all): probe the peer set, adopt any reachable primary at
// a current-or-newer epoch, otherwise self-promote if and only if this
// node beats every reachable replica on (applied sequence, address) —
// deferring up to electPatience ticks while any peer's fate is unknown.
func (n *Node) elect(rc *ReplicaClient) {
	n.mu.Lock()
	maxEpoch := n.epoch
	leader := n.leader
	n.mu.Unlock()
	if rc != nil {
		if e := rc.PrimaryEpoch(); e > maxEpoch {
			maxEpoch = e
		}
	}

	views := n.probePeers()
	unknown := 0
	var bestPrimary *peerView
	for i := range views {
		v := &views[i]
		if v.err != nil {
			if !v.down {
				unknown++
			}
			continue
		}
		if v.topo.Epoch > maxEpoch {
			maxEpoch = v.topo.Epoch
		}
		if v.topo.Role != RolePrimary {
			continue
		}
		if bestPrimary == nil || v.topo.Epoch > bestPrimary.topo.Epoch ||
			(v.topo.Epoch == bestPrimary.topo.Epoch && v.topo.Self < bestPrimary.topo.Self) {
			bestPrimary = v
		}
	}
	if bestPrimary != nil {
		// A reachable primary exists; (re-)follow it. The lease expiring
		// against a primary that is still reachable means our feed died,
		// not the leader — the replica client's own reconnect handles
		// that, so only switch when the leader moved.
		n.electDefer = 0
		if bestPrimary.topo.Self != leader || rc == nil {
			n.logf("failover: following primary %s (epoch %d)", bestPrimary.topo.Self, bestPrimary.topo.Epoch)
			n.follow(bestPrimary.topo.Self, bestPrimary.topo.Epoch)
		}
		return
	}
	if unknown > 0 && n.electDefer < electPatience {
		// Some peer may be alive (and may hold acked writes we lack);
		// hold the election open and re-probe next tick rather than risk
		// promoting past it.
		n.electDefer++
		n.logf("failover: %d peer(s) unreachable but not confirmed down; deferring election (%d/%d)",
			unknown, n.electDefer, electPatience)
		return
	}

	// No reachable primary: stand for election against the reachable
	// replicas. Highest applied sequence wins — it holds every write any
	// semi-sync ack ever covered — with the smaller address breaking
	// ties deterministically.
	myApplied := n.cfg.Store.CurrentSeq()
	for i := range views {
		v := &views[i]
		if v.err != nil || v.topo.Role != RoleReplica {
			continue
		}
		peerApplied := v.topo.AppliedSeq
		peerAddr := v.topo.Self
		if peerAddr == "" {
			peerAddr = v.addr
		}
		if peerApplied > myApplied || (peerApplied == myApplied && peerAddr < n.cfg.Self) {
			n.logf("failover: deferring to %s (applied %d vs ours %d)", peerAddr, peerApplied, myApplied)
			n.electDefer = 0
			return
		}
	}
	n.electDefer = 0
	n.promote(maxEpoch + 1)
}

// startReplica builds this node's replica client against primary.
func (n *Node) startReplica(primary string) (*ReplicaClient, error) {
	lease := n.cfg.LeaseInterval
	rc, err := StartReplica(ReplicaConfig{
		Primary:    primary,
		Store:      n.cfg.Store,
		MinBackoff: lease / 8,
		MaxBackoff: lease,
		// A read timeout past the election threshold would leave a dead
		// connection pinning a stale LastContact; 2 leases lines the two
		// detectors up.
		ReadTimeout: 2 * lease,
		OnReset:     n.cfg.OnReset,
		Logf:        n.cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	n.cfg.Server.SetReplicaStatus(rc)
	return rc, nil
}

// follow (re)points the node at a leader as its replica.
func (n *Node) follow(leader string, epoch uint64) {
	n.mu.Lock()
	if n.rundown {
		n.mu.Unlock()
		return
	}
	old := n.rc
	n.rc = nil
	n.leader = leader
	if epoch > n.epoch {
		n.epoch = epoch
	}
	n.mu.Unlock()
	if old != nil {
		old.Stop()
	}
	n.cfg.Server.SetLeaderHint(leader)
	rc, err := n.startReplica(leader)
	if err != nil {
		n.logf("failover: cannot follow %s: %v", leader, err)
		return
	}
	n.mu.Lock()
	if n.rundown {
		n.mu.Unlock()
		rc.Stop()
		return
	}
	n.rc = rc
	n.mu.Unlock()
}

// promote makes this node the primary at epoch. The fresh in-memory
// ReplLog re-mints nothing: the store's sequence counter continues from
// the applied watermark, and the fresh run ID forces every follower
// through a full resync against this incarnation.
func (n *Node) promote(epoch uint64) {
	n.mu.Lock()
	if n.rundown || n.role == RolePrimary {
		n.mu.Unlock()
		return
	}
	old := n.rc
	n.rc = nil
	n.mu.Unlock()
	if old != nil {
		old.Stop()
	}

	n.logf("failover: promoting self (%s) to primary at epoch %d", n.cfg.Self, epoch)
	rl := ttkv.NewReplLog(nil)
	rl.SetEpoch(epoch)
	if err := n.cfg.Store.AttachReplLog(rl); err != nil {
		n.logf("failover: promotion failed attaching log: %v", err)
		return
	}
	srv := n.cfg.Server
	srv.EnableReplication(rl, n.cfg.Replication)
	srv.SetSemiSync(n.cfg.SemiSync)
	srv.SetLeaderHint("")
	srv.SetReadOnly(false)

	n.mu.Lock()
	n.role = RolePrimary
	n.epoch = epoch
	n.rl = rl
	n.leader = n.cfg.Self
	n.mu.Unlock()
}

// demote fences this node out of the primary role and rejoins as leader's
// replica: writes are rejected (with a redirect) before the feeds are
// torn down, the persistence sink is detached so the incoming full
// resync may reset the store, and the AOF appender — if this was the
// original durable primary — is retired for good (see
// NodeConfig.GroupCommit).
func (n *Node) demote(leader string, epoch uint64) {
	n.mu.Lock()
	if n.rundown || n.role == RoleReplica {
		n.mu.Unlock()
		return
	}
	n.role = RoleReplica
	n.rl = nil
	n.leader = leader
	if epoch > n.epoch {
		n.epoch = epoch
	}
	gc := n.gc
	n.gc = nil
	n.mu.Unlock()

	srv := n.cfg.Server
	srv.SetReadOnly(true)
	srv.SetLeaderHint(leader)
	srv.DisableReplication()
	if err := n.cfg.Store.AttachReplLog(nil); err != nil {
		n.logf("failover: demotion failed detaching log: %v", err)
	}
	if gc != nil {
		if err := gc.Close(); err != nil {
			n.logf("failover: closing AOF appender on demotion: %v", err)
		}
	}
	rc, err := n.startReplica(leader)
	if err != nil {
		n.logf("failover: demoted but cannot follow %s: %v", leader, err)
		return
	}
	n.mu.Lock()
	if n.rundown {
		n.mu.Unlock()
		rc.Stop()
		return
	}
	n.rc = rc
	n.mu.Unlock()
}
