package ttkvwire

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/core"
	"ocasta/internal/repair"
	"ocasta/internal/ttkv"
)

const (
	evoOffline = "/apps/evolution/shell/start_offline"
	evoSync    = "/apps/evolution/shell/offline_sync"
)

// seedEvolutionFault records a history where the evolution offline pair is
// co-modified, then breaks it: start_offline flipped on at errAt.
func seedEvolutionFault(t *testing.T, store *ttkv.Store) (base, errAt time.Time) {
	t.Helper()
	base = time.Date(2013, 6, 1, 9, 0, 0, 0, time.UTC)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for day := 0; day < 4; day++ {
		ts := base.Add(time.Duration(day) * 24 * time.Hour)
		must(store.Set(evoOffline, "b:false", ts))
		sync := "b:false"
		if day%2 == 0 {
			sync = "b:true"
		}
		must(store.Set(evoSync, sync, ts))
	}
	errAt = base.Add(18 * 24 * time.Hour)
	must(store.Set(evoOffline, "b:true", errAt))
	must(store.Set(evoSync, "b:true", errAt))
	return base, errAt
}

func startRepairServer(t *testing.T, store *ttkv.Store, cfg RepairConfig, engine *core.Engine) *Client {
	t.Helper()
	srv := NewServer(store)
	srv.SetRepair(cfg)
	if engine != nil {
		srv.SetAnalytics(engine)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestRepairOverWire(t *testing.T) {
	store := ttkv.New()
	_, errAt := seedEvolutionFault(t, store)
	client := startRepairServer(t, store, RepairConfig{Workers: 4}, nil)

	id, err := client.RepairSubmit(RepairRequest{
		App:          "evolution",
		Trial:        []string{"launch"},
		FixedMarker:  "[x] online-mode",
		BrokenMarker: "[ ] online-mode",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.RepairWait(id, time.Millisecond, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || !st.Found {
		t.Fatalf("job = %+v, want done+found", st)
	}
	if !st.FixAt.Before(errAt) {
		t.Errorf("FixAt = %v, want before the error at %v", st.FixAt, errAt)
	}
	hasOffline := false
	for _, k := range st.Offending {
		if k == evoOffline {
			hasOffline = true
		}
	}
	if !hasOffline {
		t.Errorf("offending cluster %v does not contain %s", st.Offending, evoOffline)
	}
	if st.TrialsDone == 0 || st.TotalTrials < st.TrialsDone {
		t.Errorf("trial accounting: %d/%d", st.TrialsDone, st.TotalTrials)
	}
	if len(st.Screenshots) == 0 {
		t.Error("no screenshots reported; the user has nothing to confirm")
	} else {
		last := st.Screenshots[len(st.Screenshots)-1]
		if !strings.Contains(last.Rendered, "[x] online-mode") {
			t.Errorf("final screenshot does not show the fix:\n%s", last.Rendered)
		}
	}

	// The user confirms; apply the rollback.
	applyAt := errAt.Add(time.Hour)
	n, err := client.RepairFix(id, applyAt)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("RFIX reverted 0 keys")
	}
	if v, _ := store.Get(evoOffline); v != "b:false" {
		t.Errorf("after RFIX, %s = %q, want b:false", evoOffline, v)
	}
	// Post-fix point-in-time reads see the revert as new history.
	ver, err := store.GetAt(evoOffline, applyAt)
	if err != nil || ver.Value != "b:false" {
		t.Errorf("GetAt(applyAt) = %+v, %v; want the reverted value", ver, err)
	}
	// A second RFIX must be rejected.
	if _, err := client.RepairFix(id, applyAt.Add(time.Hour)); err == nil {
		t.Error("second RFIX must fail")
	}
}

// TestRepairOverWireEquivalentToLocal drives the same search locally and
// over the wire and compares the outcome fields RSTAT carries.
func TestRepairOverWireEquivalentToLocal(t *testing.T) {
	store := ttkv.New()
	seedEvolutionFault(t, store)
	client := startRepairServer(t, store, RepairConfig{Workers: 16}, nil)

	tool := repair.NewTool(store, apps.ModelByName("evolution"))
	want, err := tool.Search(repair.Options{
		Trial:  []string{"launch"},
		Oracle: repair.MarkerOracle("[x] online-mode", "[ ] online-mode"),
	})
	if err != nil {
		t.Fatal(err)
	}

	id, err := client.RepairSubmit(RepairRequest{
		App: "evolution", Trial: []string{"launch"},
		FixedMarker: "[x] online-mode", BrokenMarker: "[ ] online-mode",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.RepairWait(id, time.Millisecond, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Found != want.Found || !st.FixAt.Equal(want.FixAt) ||
		st.TrialsDone != want.Trials || st.TotalTrials != want.TotalTrials {
		t.Errorf("wire result %+v diverges from local %+v", st, want)
	}
	if !reflect.DeepEqual(st.Offending, want.Offending.Keys) {
		t.Errorf("wire offending %v != local %v", st.Offending, want.Offending.Keys)
	}
	if len(st.Screenshots) != len(want.Screenshots) {
		t.Fatalf("wire screenshots %d != local %d", len(st.Screenshots), len(want.Screenshots))
	}
	for i := range st.Screenshots {
		w := want.Screenshots[i]
		g := st.Screenshots[i]
		if g.Hash != w.Hash || g.Trial != w.Trial || g.Cluster != w.Cluster ||
			!g.At.Equal(w.At) || g.Rendered != w.Rendered {
			t.Errorf("screenshot %d diverges: %+v vs %+v", i, g, w)
		}
	}
}

func TestRepairLiveClusters(t *testing.T) {
	store := ttkv.New()
	engine := core.NewEngine(core.EngineConfig{})
	store.SetStatsObserver(engine)
	_, errAt := seedEvolutionFault(t, store)
	engine.Flush()
	engine.Recluster()
	client := startRepairServer(t, store, RepairConfig{Workers: 4}, engine)

	snap, err := client.Clusters(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Clusters) == 0 {
		t.Fatal("engine published no clusters")
	}

	id, err := client.RepairSubmit(RepairRequest{
		App: "evolution", Trial: []string{"launch"},
		FixedMarker: "[x] online-mode", BrokenMarker: "[ ] online-mode",
		Live: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.RepairWait(id, time.Millisecond, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || !st.Found {
		t.Fatalf("live-cluster job = %+v, want done+found", st)
	}
	if !st.FixAt.Before(errAt) {
		t.Errorf("live FixAt = %v, want before %v", st.FixAt, errAt)
	}
}

// TestRepairLiveBeforeFirstPublish: a live search against an engine that
// has not published any clustering yet must be rejected, not report a
// confident "nothing to roll back".
func TestRepairLiveBeforeFirstPublish(t *testing.T) {
	store := ttkv.New()
	engine := core.NewEngine(core.EngineConfig{})
	store.SetStatsObserver(engine)
	seedEvolutionFault(t, store)
	// No Recluster call: the published snapshot is still empty.
	client := startRepairServer(t, store, RepairConfig{}, engine)
	_, err := client.RepairSubmit(RepairRequest{
		App: "evolution", Trial: []string{"launch"},
		FixedMarker: "[x] online-mode", BrokenMarker: "[ ] online-mode",
		Live: true,
	})
	if err == nil || !strings.Contains(err.Error(), "not published") {
		t.Fatalf("pre-publish live repair err = %v, want a not-published rejection", err)
	}
}

// TestRepairFixNothingBroken: a job that found the symptom already absent
// (Found with no offending cluster) has nothing to revert; RFIX must say
// so instead of surfacing a store-level error.
func TestRepairFixNothingBroken(t *testing.T) {
	store := ttkv.New()
	// Healthy history only: online mode was never broken.
	if err := store.Set(evoOffline, "b:false", time.Date(2013, 6, 1, 9, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	client := startRepairServer(t, store, RepairConfig{}, nil)
	id, err := client.RepairSubmit(RepairRequest{
		App: "evolution", Trial: []string{"launch"},
		FixedMarker: "[x] online-mode", BrokenMarker: "[ ] online-mode",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.RepairWait(id, time.Millisecond, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || !st.Found || len(st.Offending) != 0 {
		t.Fatalf("healthy-app job = %+v, want done+found with no offending cluster", st)
	}
	if _, err := client.RepairFix(id, time.Now()); err == nil ||
		!strings.Contains(err.Error(), "no fix to apply") {
		t.Fatalf("RFIX on nothing-broken job err = %v, want 'no fix to apply'", err)
	}
}

func TestRepairLiveRequiresAnalytics(t *testing.T) {
	store := ttkv.New()
	seedEvolutionFault(t, store)
	client := startRepairServer(t, store, RepairConfig{}, nil)
	_, err := client.RepairSubmit(RepairRequest{
		App: "evolution", Trial: []string{"launch"},
		FixedMarker: "[x] online-mode", Live: true,
	})
	if err == nil {
		t.Fatal("live repair without analytics must fail")
	}
}

func TestRepairValidationErrors(t *testing.T) {
	store := ttkv.New()
	seedEvolutionFault(t, store)
	client := startRepairServer(t, store, RepairConfig{}, nil)

	cases := []RepairRequest{
		{App: "no-such-app", Trial: []string{"launch"}, FixedMarker: "x"},
		{App: "evolution", Trial: []string{"launch"}}, // no markers
	}
	for i, req := range cases {
		if _, err := client.RepairSubmit(req); err == nil {
			t.Errorf("case %d: submit succeeded, want error", i)
		}
	}
	if _, err := client.RepairSubmit(RepairRequest{}); err == nil {
		t.Error("empty request must fail client-side")
	}
	if _, err := client.RepairSubmit(RepairRequest{
		App: "evolution", Trial: []string{"a;b"}, FixedMarker: "x",
	}); err == nil {
		t.Error("trial action containing the separator must fail client-side")
	}
	if _, err := client.RepairStatus("r999"); err == nil {
		t.Error("RSTAT of unknown job must fail")
	}
	if _, err := client.RepairFix("r999", time.Now()); err == nil {
		t.Error("RFIX of unknown job must fail")
	}
}

func TestRepairFixBeforeDone(t *testing.T) {
	store := ttkv.New()
	seedEvolutionFault(t, store)

	// Drive the manager directly with a sandbox that blocks, so the job
	// is reliably unfinished when RFIX-equivalent logic runs.
	mgr := newJobManager(RepairConfig{Workers: 1, MaxActive: 1}, store)
	defer mgr.close()
	release := make(chan struct{})
	var once sync.Once
	tool := repair.NewTool(store, apps.ModelByName("evolution"))
	model := apps.ModelByName("evolution")
	job, err := mgr.submit(tool, repair.Options{
		Trial:  []string{"launch"},
		Oracle: repair.MarkerOracle("[x] online-mode", "[ ] online-mode"),
		Sandbox: func(cfg apps.Config, trial []string) string {
			<-release
			return model.Render(cfg, trial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	job.mu.Lock()
	state := job.state
	job.mu.Unlock()
	if state == JobDone || state == JobFailed {
		t.Fatalf("job already %s", state)
	}
	once.Do(func() { close(release) })
}

// TestJobManagerBounds exercises MaxActive queueing and MaxJobs eviction
// directly.
func TestJobManagerBounds(t *testing.T) {
	store := ttkv.New()
	seedEvolutionFault(t, store)
	model := apps.ModelByName("evolution")
	mgr := newJobManager(RepairConfig{Workers: 1, MaxActive: 1, MaxJobs: 2}, store)
	defer mgr.close()

	release := make(chan struct{})
	blockingOpts := func() repair.Options {
		return repair.Options{
			Trial:  []string{"launch"},
			Oracle: repair.MarkerOracle("[x] online-mode", "[ ] online-mode"),
			Sandbox: func(cfg apps.Config, trial []string) string {
				<-release
				return model.Render(cfg, trial)
			},
		}
	}
	j1, err := mgr.submit(repair.NewTool(store, model), blockingOpts())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := mgr.submit(repair.NewTool(store, model), blockingOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Capacity: both retained slots live, neither finished -> reject.
	if _, err := mgr.submit(repair.NewTool(store, model), blockingOpts()); err == nil {
		t.Fatal("third submit must be rejected while both jobs are live")
	}
	// With MaxActive=1, at most one of the two is ever running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		states := []string{jobState(j1), jobState(j2)}
		running := 0
		for _, s := range states {
			if s == JobRunning {
				running++
			}
		}
		if running > 1 {
			t.Fatalf("both jobs running despite MaxActive=1: %v", states)
		}
		if running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no job started running: %v", states)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	waitJob(t, j1)
	waitJob(t, j2)
	// Both finished: a new submission evicts the older one.
	j3, err := mgr.submit(repair.NewTool(store, model), repair.Options{
		Trial:  []string{"launch"},
		Oracle: repair.MarkerOracle("[x] online-mode", "[ ] online-mode"),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j3)
	ids := mgr.sortedJobIDs()
	if len(ids) != 2 {
		t.Fatalf("retained jobs = %v, want 2", ids)
	}
	if _, ok := mgr.get(j1.id); ok {
		t.Error("oldest finished job was not evicted")
	}
}

// TestJobManagerSubmitAfterClose: close() and submit() synchronize on the
// manager mutex, so a submission racing shutdown is rejected instead of
// tripping the WaitGroup add-after-wait panic or leaking a search.
func TestJobManagerSubmitAfterClose(t *testing.T) {
	store := ttkv.New()
	seedEvolutionFault(t, store)
	model := apps.ModelByName("evolution")
	mgr := newJobManager(RepairConfig{}, store)
	mgr.close()
	_, err := mgr.submit(repair.NewTool(store, model), repair.Options{
		Trial:  []string{"launch"},
		Oracle: repair.MarkerOracle("[x] online-mode", "[ ] online-mode"),
	})
	if err == nil {
		t.Fatal("submit after close must be rejected")
	}
	// close is idempotent.
	mgr.close()
}

func jobState(j *repairJob) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func waitJob(t *testing.T, j *repairJob) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := jobState(j)
		if s == JobDone || s == JobFailed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", j.id, s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerCloseCancelsRepairs submits a search that can only finish by
// cancellation and checks Close does not hang.
func TestServerCloseCancelsRepairs(t *testing.T) {
	store := ttkv.New()
	seedEvolutionFault(t, store)
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// An exhaustive search (oracle can never match: bogus fixed marker on
	// a tiny history) finishes fast; to exercise cancellation we rely on
	// Close racing it — either way Close must return promptly.
	if _, err := client.RepairSubmit(RepairRequest{
		App: "evolution", Trial: []string{"launch"},
		FixedMarker: "never-on-screen",
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close hung on repair jobs")
	}
}
