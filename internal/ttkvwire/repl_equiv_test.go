package ttkvwire

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ocasta/internal/core"
	"ocasta/internal/ttkv"
	"ocasta/internal/workload"
)

// replEquivCase is one primary configuration of the equivalence matrix.
type replEquivCase struct {
	name     string
	shards   int
	fsync    string // "" = in-memory primary (no AOF)
	replicas int
	seed     int64
}

// buildMutations converts a synthetic co-modification trace into the
// mutation stream the suite drives: mostly sets, every 10th event a
// delete of the same key, preserving trace order.
func buildMutations(spec workload.StreamSpec) []ttkv.Mutation {
	tr := workload.SyntheticStream(spec)
	muts := make([]ttkv.Mutation, 0, len(tr.Events))
	for i, ev := range tr.Events {
		m := ttkv.Mutation{Key: ev.Key, Value: ev.Value, Time: ev.Time}
		if i%10 == 9 {
			m.Delete, m.Value = true, ""
		}
		muts = append(muts, m)
	}
	return muts
}

// startEquivPrimary builds the case's primary: sharded store, optional
// group-commit AOF per fsync policy, replication log, engine, server.
func startEquivPrimary(t *testing.T, c replEquivCase, engine *core.Engine) (*ttkv.Store, *ttkv.ReplLog, string) {
	t.Helper()
	store := ttkv.NewSharded(c.shards)
	if engine != nil {
		store.SetStatsObserver(engine)
	}
	var gc *ttkv.GroupCommit
	if c.fsync != "" {
		policy, err := ttkv.ParseFsyncPolicy(c.fsync)
		if err != nil {
			t.Fatal(err)
		}
		aof, err := ttkv.CreateAOF(filepath.Join(t.TempDir(), "primary.aof"))
		if err != nil {
			t.Fatal(err)
		}
		gc = ttkv.NewGroupCommit(aof, ttkv.GroupCommitConfig{
			FlushInterval: 5 * time.Millisecond,
			Fsync:         policy,
		})
		t.Cleanup(func() {
			store.AttachReplLog(nil)
			gc.Close()
		})
	}
	rl := ttkv.NewReplLog(gc)
	if err := store.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	_, addr := startReplPrimary(t, store, rl, engine)
	return store, rl, addr
}

// TestReplEquivalence is the replication equivalence property suite:
// randomized workloads applied to a primary with 1-3 replicas across
// shard counts and fsync policies must yield byte-identical dumps,
// identical per-key histories and ModTimes, and identical engine cluster
// snapshots once lag drains. A mid-stream cluster revert exercises the
// atomic batch path.
func TestReplEquivalence(t *testing.T) {
	cases := []replEquivCase{
		{name: "memory-1shard-1replica", shards: 1, fsync: "", replicas: 1, seed: 101},
		{name: "always-4shards-2replicas", shards: 4, fsync: "always", replicas: 2, seed: 202},
		{name: "interval-16shards-3replicas", shards: 16, fsync: "interval", replicas: 3, seed: 303},
		{name: "never-8shards-2replicas", shards: 8, fsync: "never", replicas: 2, seed: 404},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pEngine := core.NewEngine(core.EngineConfig{})
			primary, rl, addr := startEquivPrimary(t, c, pEngine)

			type replicaNode struct {
				store  *ttkv.Store
				rc     *ReplicaClient
				engine *core.Engine
			}
			nodes := make([]*replicaNode, c.replicas)
			rcs := make([]*ReplicaClient, c.replicas)
			for i := range nodes {
				engine := core.NewEngine(core.EngineConfig{})
				store, rc, _ := startReplicaNode(t, addr, engine)
				nodes[i] = &replicaNode{store: store, rc: rc, engine: engine}
				rcs[i] = rc
			}

			muts := buildMutations(workload.StreamSpec{
				Apps:             2,
				Components:       12,
				KeysPerComponent: 4,
				Episodes:         150,
				Seed:             c.seed,
			})
			rng := rand.New(rand.NewSource(c.seed))

			// Drive in randomized chunk sizes, mixing the batch API with
			// per-op calls; two thirds in, revert one component's cluster
			// (atomic batch through the tap).
			revertAt := 2 * len(muts) / 3
			for i := 0; i < len(muts); {
				if i >= revertAt && revertAt > 0 {
					revertAt = 0
					cluster := componentKeys(muts[:i], rng)
					if len(cluster) > 0 {
						fixAt := muts[i/2].Time
						applyAt := muts[i-1].Time.Add(time.Millisecond)
						if _, err := primary.RevertCluster(cluster, fixAt, applyAt); err != nil {
							t.Fatalf("mid-stream revert: %v", err)
						}
					}
				}
				n := 1 + rng.Intn(40)
				if i+n > len(muts) {
					n = len(muts) - i
				}
				if rng.Intn(2) == 0 {
					if _, err := primary.Apply(muts[i : i+n]); err != nil {
						t.Fatal(err)
					}
				} else {
					for _, m := range muts[i : i+n] {
						var err error
						if m.Delete {
							err = primary.Delete(m.Key, m.Time)
						} else {
							err = primary.Set(m.Key, m.Value, m.Time)
						}
						if err != nil {
							t.Fatal(err)
						}
					}
				}
				i += n
			}

			drainReplicas(t, primary, rl, rcs...)

			pDump := storeDump(t, primary)
			pKeys := primary.Keys()
			pEngine.Flush()
			pEngine.Recluster()
			pClusters, _ := pEngine.Snapshot()
			for i, node := range nodes {
				if !bytes.Equal(storeDump(t, node.store), pDump) {
					t.Fatalf("replica %d dump differs from primary", i)
				}
				for _, k := range pKeys {
					ph, err := primary.History(k)
					if err != nil {
						t.Fatal(err)
					}
					rh, err := node.store.History(k)
					if err != nil {
						t.Fatalf("replica %d History(%q): %v", i, k, err)
					}
					if len(ph) != len(rh) {
						t.Fatalf("replica %d %q: %d versions, want %d", i, k, len(rh), len(ph))
					}
					for j := range ph {
						if ph[j] != rh[j] { // Seq included: exact identity
							t.Fatalf("replica %d %q version %d: %+v != %+v", i, k, j, rh[j], ph[j])
						}
					}
				}
				pm, rm := primary.ModTimes(pKeys), node.store.ModTimes(pKeys)
				if len(pm) != len(rm) {
					t.Fatalf("replica %d: %d modtimes, want %d", i, len(rm), len(pm))
				}
				for j := range pm {
					if !pm[j].Equal(rm[j]) {
						t.Fatalf("replica %d modtimes[%d]: %v != %v", i, j, rm[j], pm[j])
					}
				}
				node.engine.Flush()
				node.engine.Recluster()
				rClusters, _ := node.engine.Snapshot()
				if len(rClusters) != len(pClusters) {
					t.Fatalf("replica %d published %d clusters, primary %d", i, len(rClusters), len(pClusters))
				}
				for j := range pClusters {
					if !clustersEqual(&pClusters[j], &rClusters[j]) {
						t.Fatalf("replica %d cluster %d: %+v != %+v", i, j, rClusters[j], pClusters[j])
					}
				}
			}
		})
	}
}

// componentKeys picks one already-written component's key set (a real
// cluster) from the driven prefix.
func componentKeys(muts []ttkv.Mutation, rng *rand.Rand) []string {
	prefixes := make(map[string][]string)
	seen := make(map[string]bool)
	for _, m := range muts {
		if seen[m.Key] {
			continue
		}
		seen[m.Key] = true
		// Keys look like app00/c0003/k01; group by the component prefix.
		if i := len(m.Key) - 4; i > 0 {
			p := m.Key[:i]
			prefixes[p] = append(prefixes[p], m.Key)
		}
	}
	var comps [][]string
	for _, keys := range prefixes {
		if len(keys) >= 2 {
			comps = append(comps, keys)
		}
	}
	if len(comps) == 0 {
		return nil
	}
	return comps[rng.Intn(len(comps))]
}

// TestReplEquivalenceConcurrentWriters hammers a replicated primary from
// parallel writers (run under -race in CI): whatever interleaving the
// primary commits, every replica must reproduce byte-identically.
func TestReplEquivalenceConcurrentWriters(t *testing.T) {
	c := replEquivCase{shards: 16, fsync: "interval", replicas: 2, seed: 777}
	primary, rl, addr := startEquivPrimary(t, c, nil)
	stores := make([]*ttkv.Store, c.replicas)
	rcs := make([]*ReplicaClient, c.replicas)
	for i := range stores {
		stores[i], rcs[i], _ = startReplicaNode(t, addr, nil)
	}

	const writers = 6
	var wg sync.WaitGroup
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("shared/k%02d", rng.Intn(25))
				ts := base.Add(time.Duration(i) * time.Second)
				switch rng.Intn(10) {
				case 0:
					primary.Delete(k, ts)
				case 1:
					primary.Apply([]ttkv.Mutation{
						{Key: k, Value: "batch", Time: ts},
						{Key: fmt.Sprintf("shared/k%02d", rng.Intn(25)), Value: "batch2", Time: ts},
					})
				default:
					primary.Set(k, fmt.Sprintf("w%d-%d", w, i), ts)
				}
			}
		}(w)
	}
	// Concurrent cluster reverts race the writers through the batch path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			primary.RevertCluster(
				[]string{"shared/k00", "shared/k07", "shared/k19"},
				base.Add(30*time.Second),
				base.Add(time.Duration(400+i)*time.Second),
			)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	drainReplicas(t, primary, rl, rcs...)
	pDump := storeDump(t, primary)
	for i, rs := range stores {
		if !bytes.Equal(storeDump(t, rs), pDump) {
			t.Fatalf("replica %d dump differs from primary under concurrent writers", i)
		}
	}
	if primary.Stats().Writes == 0 {
		t.Fatal("workload applied nothing")
	}
}
