package ttkvwire

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ocasta/internal/backup"
)

// This file is the wire surface of the backup subsystem: the BACKUP and
// BSTAT commands on the server, and Client.Backup / Client.Backups on
// the client. Both commands are read-side — a backup pins a sequence
// bound and scans under per-shard read locks, never blocking writers —
// so a read-only replica serves them, letting operators point backup
// schedules at a replica and keep the primary's latency budget intact.

// errBackupsDisabled is the reply to BACKUP/BSTAT when the server has no
// backup manager attached.
const errBackupsDisabled = "ERR backups disabled (run ttkvd with -backup-dir)"

// cmdBackup takes a backup now. Usage: BACKUP [AUTO|FULL|INCR], AUTO
// being the default (full into an empty directory, incremental after).
// Concurrent BACKUP commands serialize on the manager; the store is
// never blocked. Reply: one backupValue row.
func (s *Server) cmdBackup(args []string) Value {
	if s.backups == nil {
		return errValue(errBackupsDisabled)
	}
	if len(args) > 1 {
		return errValue("ERR usage: BACKUP [AUTO|FULL|INCR]")
	}
	mode := "AUTO"
	if len(args) == 1 {
		mode = strings.ToUpper(args[0])
	}
	var man *backup.Manifest
	var err error
	switch mode {
	case "AUTO":
		man, err = s.backups.Auto()
	case "FULL":
		man, err = s.backups.Full()
	case "INCR":
		man, err = s.backups.Incremental()
	default:
		return errValue("ERR usage: BACKUP [AUTO|FULL|INCR]")
	}
	if err != nil {
		return errValue("ERR " + err.Error())
	}
	return backupValue(man)
}

// cmdBackupStat lists the directory's backups, oldest first. Usage:
// BSTAT. Reply: array of backupValue rows.
func (s *Server) cmdBackupStat(args []string) Value {
	if s.backups == nil {
		return errValue(errBackupsDisabled)
	}
	if len(args) != 0 {
		return errValue("ERR usage: BSTAT")
	}
	mans, err := s.backups.List()
	if err != nil {
		return errValue("ERR " + err.Error())
	}
	out := make([]Value, len(mans))
	for i, m := range mans {
		out[i] = backupValue(m)
	}
	return array(out...)
}

// backupValue renders one manifest as a 9-element array:
// id, kind, parent ("-" for fulls), then base, upto, records, bytes,
// files, created-unixnanos as bulk integers.
func backupValue(m *backup.Manifest) Value {
	parent := m.Parent
	if parent == "" {
		parent = "-"
	}
	return array(
		bulk(m.ID), bulk(m.Kind), bulk(parent),
		bulkInt(int64(m.Base)), bulkInt(int64(m.UpTo)),
		bulkInt(int64(m.Records())), bulkInt(m.TotalBytes()),
		bulkInt(int64(len(m.Files))), bulkInt(m.Created),
	)
}

// BackupInfo is a parsed BACKUP/BSTAT row: one backup as the server
// described it.
type BackupInfo struct {
	// ID names the backup; Parent is the backup it increments on ("" for
	// a full backup).
	ID     string
	Kind   string // "full" or "incr"
	Parent string
	// Base and UpTo bound the covered sequence range (Base, UpTo].
	Base uint64
	UpTo uint64
	// Records and Bytes total the archived data across Files record
	// files.
	Records uint64
	Bytes   int64
	Files   int
	// Created is when the backup was taken.
	Created time.Time
}

// Backup asks the server to take a backup now. kind is "auto", "full",
// or "incr" ("" means auto). The call returns when the backup is
// durably on disk.
func (c *Client) Backup(kind string) (BackupInfo, error) {
	return c.BackupContext(context.Background(), kind)
}

// BackupContext is Backup with a context.
func (c *Client) BackupContext(ctx context.Context, kind string) (BackupInfo, error) {
	args := []string{"BACKUP"}
	if kind != "" {
		args = append(args, strings.ToUpper(kind))
	}
	v, err := c.roundTrip(ctx, args...)
	if err != nil {
		return BackupInfo{}, err
	}
	return decodeBackupInfo(v)
}

// Backups fetches the server's backup catalog, oldest first.
func (c *Client) Backups() ([]BackupInfo, error) {
	return c.BackupsContext(context.Background())
}

// BackupsContext is Backups with a context.
func (c *Client) BackupsContext(ctx context.Context) ([]BackupInfo, error) {
	v, err := c.roundTrip(ctx, "BSTAT")
	if err != nil {
		return nil, err
	}
	if v.Kind != KindArray {
		return nil, fmt.Errorf("%w: unexpected BSTAT reply %+v", ErrProtocol, v)
	}
	out := make([]BackupInfo, len(v.Array))
	for i, el := range v.Array {
		if out[i], err = decodeBackupInfo(el); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeBackupInfo parses one backupValue row.
func decodeBackupInfo(v Value) (BackupInfo, error) {
	bad := func() (BackupInfo, error) {
		return BackupInfo{}, fmt.Errorf("%w: unexpected backup reply %+v", ErrProtocol, v)
	}
	if v.Kind != KindArray || len(v.Array) != 9 {
		return bad()
	}
	for _, el := range v.Array {
		if el.Kind != KindBulk {
			return bad()
		}
	}
	ints := make([]uint64, 6)
	for i := range ints {
		n, err := strconv.ParseUint(v.Array[3+i].Str, 10, 64)
		if err != nil {
			return bad()
		}
		ints[i] = n
	}
	info := BackupInfo{
		ID:      v.Array[0].Str,
		Kind:    v.Array[1].Str,
		Parent:  v.Array[2].Str,
		Base:    ints[0],
		UpTo:    ints[1],
		Records: ints[2],
		Bytes:   int64(ints[3]),
		Files:   int(ints[4]),
		Created: time.Unix(0, int64(ints[5])).UTC(),
	}
	if info.Parent == "-" {
		info.Parent = ""
	}
	return info, nil
}
