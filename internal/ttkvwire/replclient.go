package ttkvwire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"ocasta/internal/ttkv"
)

// ErrReplicaStopped is returned by StartReplica config validation and is
// the terminal state reason after Stop.
var ErrReplicaStopped = errors.New("ttkvwire: replica client stopped")

// ReplicaConfig configures a replica's sync client.
type ReplicaConfig struct {
	// Primary is the primary's host:port.
	Primary string
	// Store is the local store the stream applies to. It must not have a
	// persistence sink attached: the replica replays the primary's records
	// verbatim (same sequence numbers) and never re-logs them.
	Store *ttkv.Store
	// MinBackoff/MaxBackoff bound the reconnect backoff (defaults
	// 100ms / 5s). Backoff doubles per consecutive failure and resets
	// once a connection syncs successfully.
	MinBackoff, MaxBackoff time.Duration
	// ReadTimeout bounds each frame read; the primary heartbeats every
	// ReplicationConfig.HeartbeatInterval, so a silent connection longer
	// than this is declared dead. Default 15s.
	ReadTimeout time.Duration
	// OnReset, when set, is called after the local store has been reset
	// for a full resync (the primary is a new incarnation). A replica
	// serving live analytics resets its engine here, so the replayed
	// snapshot is not double-counted.
	OnReset func()
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if c.MinBackoff <= 0 {
		c.MinBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxBackoff < c.MinBackoff {
		c.MaxBackoff = c.MinBackoff
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 15 * time.Second
	}
	return c
}

// Replica states reported by ReplicaStatus.
const (
	ReplicaConnecting = "connecting"
	ReplicaSyncing    = "syncing"
	ReplicaStreaming  = "streaming"
	ReplicaBackoff    = "backoff"
	ReplicaStopped    = "stopped"
)

// ReplicaStatus is a snapshot of a replica client's progress.
type ReplicaStatus struct {
	Primary    string
	State      string
	AppliedSeq uint64 // newest sequence applied to the local store
	PrimarySeq uint64 // newest durable sequence heard from the primary
	Reconnects int    // completed handshakes beyond the first attempt
	LastError  string
	RunID      string // primary incarnation last synced with
	Epoch      uint64 // primary's fencing epoch from the last handshake
}

// ReplicaClient maintains asynchronous replication from a primary into a
// local read-only store: it dials, SYNCs from its last applied sequence,
// applies the record stream (atomic batches applied atomically), acks
// progress, and reconnects with exponential backoff when the connection
// dies — resuming exactly where it stopped. Construct with StartReplica;
// Stop tears it down.
type ReplicaClient struct {
	cfg ReplicaConfig
	// replicaID identifies this physical replica process across
	// reconnects; the primary's semi-sync gate dedupes sessions by it, so
	// a reconnect racing its stale feed never double-counts as two
	// replicas.
	replicaID string

	mu          sync.Mutex
	conn        net.Conn // live connection, for Stop to sever
	state       string
	applied     uint64
	primarySeq  uint64
	reconnects  int
	synced      int // successful handshakes, for backoff reset
	lastErr     string
	runID       string    // primary incarnation last synced with
	epoch       uint64    // primary's fencing epoch from the last handshake
	lastContact time.Time // last successful handshake or frame read

	stop chan struct{}
	done chan struct{}
}

// StartReplica validates cfg and starts the replication loop.
func StartReplica(cfg ReplicaConfig) (*ReplicaClient, error) {
	if cfg.Primary == "" {
		return nil, errors.New("ttkvwire: replica config needs a primary address")
	}
	if cfg.Store == nil {
		return nil, errors.New("ttkvwire: replica config needs a store")
	}
	rc := &ReplicaClient{
		cfg:       cfg.withDefaults(),
		replicaID: newRunID(),
		state:     ReplicaConnecting,
		applied:   cfg.Store.CurrentSeq(),
		// Seeding lastContact at start gives failure detection a full
		// lease interval of grace before a never-reached primary counts
		// as dead.
		lastContact: time.Now(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	go rc.run()
	return rc, nil
}

// Stop severs the connection and stops reconnecting. It returns once the
// replication loop has fully exited; buffered but incomplete batches are
// discarded (they re-arrive on the next sync, the stream resumes from the
// last applied sequence).
func (rc *ReplicaClient) Stop() {
	rc.mu.Lock()
	select {
	case <-rc.stop:
	default:
		close(rc.stop)
	}
	if rc.conn != nil {
		rc.conn.Close()
	}
	rc.mu.Unlock()
	<-rc.done
	rc.mu.Lock()
	rc.state = ReplicaStopped
	rc.mu.Unlock()
}

// ReplicaStatus implements ReplicaStatusSource for REPLSTAT.
func (rc *ReplicaClient) ReplicaStatus() ReplicaStatus {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ReplicaStatus{
		Primary:    rc.cfg.Primary,
		State:      rc.state,
		AppliedSeq: rc.applied,
		PrimarySeq: rc.primarySeq,
		Reconnects: rc.reconnects,
		LastError:  rc.lastErr,
		RunID:      rc.runID,
		Epoch:      rc.epoch,
	}
}

// AppliedSeq returns the newest sequence applied to the local store.
func (rc *ReplicaClient) AppliedSeq() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.applied
}

// PrimaryEpoch returns the primary's fencing epoch from the last
// completed handshake (zero before any, or against a pre-failover
// primary).
func (rc *ReplicaClient) PrimaryEpoch() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.epoch
}

// LastContact returns when the replica last heard from its primary: a
// completed handshake or any received frame (data or heartbeat). The
// failover lease check compares this against the lease interval; a
// primary silent past the lease is presumed dead.
func (rc *ReplicaClient) LastContact() time.Time {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lastContact
}

func (rc *ReplicaClient) logf(format string, args ...any) {
	if rc.cfg.Logf != nil {
		rc.cfg.Logf(format, args...)
	}
}

// run is the reconnect loop.
func (rc *ReplicaClient) run() {
	defer close(rc.done)
	backoff := rc.cfg.MinBackoff
	for {
		syncedBefore := rc.syncedCount()
		err := rc.syncOnce()
		select {
		case <-rc.stop:
			return
		default:
		}
		rc.mu.Lock()
		if err != nil {
			rc.lastErr = err.Error()
		}
		rc.state = ReplicaBackoff
		rc.mu.Unlock()
		rc.logf("replica: sync to %s ended: %v (retrying in %v)", rc.cfg.Primary, err, backoff)
		if rc.syncedCount() > syncedBefore {
			backoff = rc.cfg.MinBackoff // the last attempt reached streaming
		}
		select {
		case <-rc.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > rc.cfg.MaxBackoff {
			backoff = rc.cfg.MaxBackoff
		}
	}
}

func (rc *ReplicaClient) syncedCount() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.synced
}

// syncOnce runs one connection lifetime: dial, handshake, apply frames
// until the stream dies.
func (rc *ReplicaClient) syncOnce() error {
	rc.mu.Lock()
	rc.state = ReplicaConnecting
	afterSeq := rc.applied
	runID := rc.runID
	rc.mu.Unlock()
	if runID == "" {
		runID = "?"
	}

	conn, err := net.DialTimeout("tcp", rc.cfg.Primary, 10*time.Second)
	if err != nil {
		return err
	}
	rc.mu.Lock()
	select {
	case <-rc.stop:
		rc.mu.Unlock()
		conn.Close()
		return ErrReplicaStopped
	default:
	}
	rc.conn = conn
	rc.mu.Unlock()
	defer func() {
		conn.Close()
		rc.mu.Lock()
		if rc.conn == conn {
			rc.conn = nil
		}
		rc.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	if err := writeCommand(bw, "SYNC", strconv.FormatUint(afterSeq, 10), runID, rc.replicaID); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(rc.cfg.ReadTimeout))
	reply, err := ReadValue(br)
	if err != nil {
		return err
	}
	if reply.Kind == KindError {
		return &RemoteError{Msg: reply.Str}
	}
	newRunID, from, epoch, full, err := parseSyncReply(reply)
	if err != nil {
		return err
	}
	if full {
		// New primary incarnation: the local prefix cannot be trusted.
		if rc.cfg.Store.CurrentSeq() > 0 {
			rc.logf("replica: full resync from %s (run %s): resetting local store", rc.cfg.Primary, newRunID)
			if err := rc.cfg.Store.Reset(); err != nil {
				return err
			}
			if rc.cfg.OnReset != nil {
				rc.cfg.OnReset()
			}
		}
		rc.mu.Lock()
		rc.applied = 0
		rc.mu.Unlock()
	}
	rc.mu.Lock()
	rc.runID = newRunID
	rc.epoch = epoch
	rc.primarySeq = from
	rc.lastContact = time.Now()
	// A resume that is already at the watermark has no snapshot phase to
	// apply; it is streaming from the first frame.
	if rc.applied >= from {
		rc.state = ReplicaStreaming
	} else {
		rc.state = ReplicaSyncing
	}
	rc.synced++
	if rc.synced > 1 {
		rc.reconnects++
	}
	rc.mu.Unlock()

	// Apply loop: each data frame's complete batches are applied as one
	// atomic chunk; a batch left open at the frame boundary waits for the
	// rest. Acks carry the applied watermark back after every frame.
	var pending []ttkv.ReplRecord
	for {
		conn.SetReadDeadline(time.Now().Add(rc.cfg.ReadTimeout))
		kind, payload, seq, err := readReplFrame(br)
		if err != nil {
			return err
		}
		rc.mu.Lock()
		rc.lastContact = time.Now()
		rc.mu.Unlock()
		switch kind {
		case replFrameHeartbeat:
			rc.mu.Lock()
			if seq > rc.primarySeq {
				rc.primarySeq = seq
			}
			rc.mu.Unlock()
		case replFrameData:
			for len(payload) > 0 {
				rec, n, err := ttkv.DecodeReplRecord(payload)
				if err != nil {
					return err
				}
				pending = append(pending, rec)
				payload = payload[n:]
			}
			// Complete batches = everything up to the last record not
			// flagged batch-open.
			cut := len(pending)
			for cut > 0 && pending[cut-1].BatchOpen {
				cut--
			}
			if cut == 0 {
				continue
			}
			chunk := pending[:cut]
			if err := rc.cfg.Store.ApplyReplicated(chunk); err != nil {
				return fmt.Errorf("applying replicated records: %w", err)
			}
			applied := chunk[len(chunk)-1].Seq
			pending = append(pending[:0], pending[cut:]...)
			rc.mu.Lock()
			rc.applied = applied
			if applied > rc.primarySeq {
				rc.primarySeq = applied
			}
			if applied >= from {
				rc.state = ReplicaStreaming
			}
			rc.mu.Unlock()
		default:
			return fmt.Errorf("%w: unexpected frame %q from primary", ErrProtocol, kind)
		}
		rc.mu.Lock()
		ackSeq := rc.applied
		rc.mu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(rc.cfg.ReadTimeout))
		if err := writeReplSeq(bw, replFrameAck, ackSeq); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// parseSyncReply parses "FULLRESYNC <runid> <fromSeq> [epoch]" or
// "CONTINUE <runid> <fromSeq> [epoch]". The epoch field was added with
// failover; replies from pre-failover primaries omit it (epoch 0).
func parseSyncReply(v Value) (runID string, from, epoch uint64, full bool, err error) {
	if v.Kind != KindSimple {
		return "", 0, 0, false, fmt.Errorf("%w: unexpected SYNC reply %+v", ErrProtocol, v)
	}
	fields := strings.Fields(v.Str)
	if len(fields) < 3 || len(fields) > 4 || (fields[0] != "FULLRESYNC" && fields[0] != "CONTINUE") {
		return "", 0, 0, false, fmt.Errorf("%w: bad SYNC reply %q", ErrProtocol, v.Str)
	}
	from, err = strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return "", 0, 0, false, fmt.Errorf("%w: bad SYNC watermark %q", ErrProtocol, fields[2])
	}
	if len(fields) == 4 {
		epoch, err = strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			return "", 0, 0, false, fmt.Errorf("%w: bad SYNC epoch %q", ErrProtocol, fields[3])
		}
	}
	return fields[1], from, epoch, fields[0] == "FULLRESYNC", nil
}

// ReplStatus is a parsed REPLSTAT reply.
type ReplStatus struct {
	// Role is "none", "primary", or "replica".
	Role string

	// Primary-role fields.
	RunID       string
	AppendedSeq uint64
	DurableSeq  uint64
	Replicas    []ReplicaLink

	// Replica-role fields.
	Primary    string
	State      string
	AppliedSeq uint64
	PrimarySeq uint64
	LagRecords uint64
	Reconnects int

	// CurrentSeq is set for role "none".
	CurrentSeq uint64
}

// ReplicaLink is one connected replica as the primary sees it.
type ReplicaLink struct {
	Addr       string
	State      string // "snapshot" or "streaming"
	AckedSeq   uint64
	SentSeq    uint64
	LagRecords uint64
	LagBytes   int64
}

// ReplStatus fetches the server's replication role and progress.
func (c *Client) ReplStatus() (ReplStatus, error) {
	return c.ReplStatusContext(context.Background())
}

// ReplStatusContext fetches the server's replication role and progress.
func (c *Client) ReplStatusContext(ctx context.Context) (ReplStatus, error) {
	v, err := c.roundTrip(ctx, "REPLSTAT")
	if err != nil {
		return ReplStatus{}, err
	}
	bad := func() (ReplStatus, error) {
		return ReplStatus{}, fmt.Errorf("%w: unexpected REPLSTAT reply %+v", ErrProtocol, v)
	}
	if v.Kind != KindArray || len(v.Array) < 2 || v.Array[0].Kind != KindBulk {
		return bad()
	}
	ints := func(els []Value) ([]uint64, bool) {
		out := make([]uint64, len(els))
		for i, el := range els {
			n, err := strconv.ParseUint(el.Str, 10, 64)
			if el.Kind != KindBulk || err != nil {
				return nil, false
			}
			out[i] = n
		}
		return out, true
	}
	st := ReplStatus{Role: v.Array[0].Str}
	switch st.Role {
	case "none":
		ns, ok := ints(v.Array[1:2])
		if !ok || len(v.Array) != 2 {
			return bad()
		}
		st.CurrentSeq = ns[0]
		return st, nil
	case "replica":
		if len(v.Array) != 7 || v.Array[1].Kind != KindBulk || v.Array[2].Kind != KindBulk {
			return bad()
		}
		ns, ok := ints(v.Array[3:7])
		if !ok {
			return bad()
		}
		st.Primary, st.State = v.Array[1].Str, v.Array[2].Str
		st.AppliedSeq, st.PrimarySeq, st.LagRecords, st.Reconnects = ns[0], ns[1], ns[2], int(ns[3])
		return st, nil
	case "primary":
		if len(v.Array) < 4 || v.Array[1].Kind != KindBulk {
			return bad()
		}
		ns, ok := ints(v.Array[2:4])
		if !ok {
			return bad()
		}
		st.RunID, st.AppendedSeq, st.DurableSeq = v.Array[1].Str, ns[0], ns[1]
		for _, el := range v.Array[4:] {
			if el.Kind != KindArray || len(el.Array) != 6 ||
				el.Array[0].Kind != KindBulk || el.Array[1].Kind != KindBulk {
				return bad()
			}
			ls, ok := ints(el.Array[2:6])
			if !ok {
				return bad()
			}
			st.Replicas = append(st.Replicas, ReplicaLink{
				Addr: el.Array[0].Str, State: el.Array[1].Str,
				AckedSeq: ls[0], SentSeq: ls[1], LagRecords: ls[2], LagBytes: int64(ls[3]),
			})
		}
		return st, nil
	default:
		return bad()
	}
}
