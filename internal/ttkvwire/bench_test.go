package ttkvwire

import (
	"fmt"
	"testing"

	"ocasta/internal/ttkv"
)

// BenchmarkWireSetRoundTrip is the baseline: one SET per network round
// trip, the only mode the server supported before pipelining.
func BenchmarkWireSetRoundTrip(b *testing.B) {
	_, c := startServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set("k", "value", at(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireSetPipelined queues pipelineDepth SETs per Flush; the
// per-op cost should drop well below the round-trip baseline because the
// batch shares one write syscall and one response read burst.
func BenchmarkWireSetPipelined(b *testing.B) {
	const depth = 100
	_, c := startServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		p := c.Pipeline()
		for j := 0; j < depth && n < b.N; j++ {
			p.Set("k", "value", at(n))
			n++
		}
		if err := p.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireMSet batches depth writes into a single MSET command: one
// request, one response, one store-side batch Apply.
func BenchmarkWireMSet(b *testing.B) {
	const depth = 100
	_, c := startServer(b)
	muts := make([]ttkv.Mutation, depth)
	for i := range muts {
		muts[i] = ttkv.Mutation{Key: fmt.Sprintf("k%d", i), Value: "value", Time: at(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += depth {
		if err := c.MSet(muts); err != nil {
			b.Fatal(err)
		}
	}
}
