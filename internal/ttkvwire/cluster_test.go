package ttkvwire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"net"

	"ocasta/internal/core"
	"ocasta/internal/ttkv"
)

// cnode is one standalone primary in a hash-slot partitioned cluster.
type cnode struct {
	addr  string
	store *ttkv.Store
	rl    *ttkv.ReplLog
	srv   *Server
}

// startSlotCluster starts n independent primaries splitting a slot space
// of the given size into n contiguous even ranges (node i owns
// [i*slots/n, (i+1)*slots/n)). Every node knows every peer range, and
// replication (SYNC) is enabled so migration drivers and analytics
// drainers can attach.
func startSlotCluster(t testing.TB, n, slots int) []*cnode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	lo := func(i int) int { return i * slots / n }
	nodes := make([]*cnode, n)
	for i := range nodes {
		store := ttkv.NewSharded(4)
		rl := ttkv.NewReplLog(nil)
		if err := store.AttachReplLog(rl); err != nil {
			t.Fatal(err)
		}
		srv := NewServer(store)
		srv.EnableReplication(rl, ReplicationConfig{HeartbeatInterval: 50 * time.Millisecond})
		srv.SetAdvertise(addrs[i])
		owned := []SlotRange{{Lo: lo(i), Hi: lo(i+1) - 1}}
		var peers []SlotRange
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, SlotRange{Lo: lo(j), Hi: lo(j+1) - 1, Addr: addrs[j]})
			}
		}
		if err := srv.EnableCluster(slots, owned, peers); err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lns[i]) //nolint:errcheck
		t.Cleanup(func() { srv.Close() })
		nodes[i] = &cnode{addr: addrs[i], store: store, rl: rl, srv: srv}
	}
	return nodes
}

func clusterAddrs(nodes []*cnode) []string {
	addrs := make([]string, len(nodes))
	for i, nd := range nodes {
		addrs[i] = nd.addr
	}
	return addrs
}

// keyInSlotRange returns a key from the pool whose slot the given node
// index owns under startSlotCluster's even split.
func keyOwnedBy(t testing.TB, idx, n, slots int) string {
	t.Helper()
	lo, hi := idx*slots/n, (idx+1)*slots/n-1
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("owned/%d/%d", idx, i)
		if s := ttkv.KeySlot(k, slots); s >= lo && s <= hi {
			return k
		}
	}
	t.Fatalf("no key found for node %d's range %d-%d", idx, lo, hi)
	return ""
}

func TestParseSlotRanges(t *testing.T) {
	rs, err := ParseSlotRanges("0-7, 9, 10-15=10.0.0.1:4", 16)
	if err != nil {
		t.Fatal(err)
	}
	want := []SlotRange{{0, 7, ""}, {9, 9, ""}, {10, 15, "10.0.0.1:4"}}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("ParseSlotRanges = %+v, want %+v", rs, want)
	}
	for _, bad := range []string{"a-b", "5-2", "0-16", "-1-3"} {
		if _, err := ParseSlotRanges(bad, 16); err == nil {
			t.Errorf("ParseSlotRanges(%q) accepted", bad)
		}
	}
	if r := (SlotRange{Lo: 3, Hi: 9, Addr: "x:1"}); r.String() != "3-9=x:1" {
		t.Errorf("String = %q", r.String())
	}
}

// TestClusterMovedRedirects checks the server-side ownership contract:
// foreign-slot commands bounce with a typed MOVED naming the owner,
// before anything applies; owned slots serve normally; TOPO carries the
// slot map.
func TestClusterMovedRedirects(t *testing.T) {
	const slots = 16
	nodes := startSlotCluster(t, 2, slots)
	mine := keyOwnedBy(t, 0, 2, slots)
	theirs := keyOwnedBy(t, 1, 2, slots)

	cl, err := Dial(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Set(mine, "v", at(0)); err != nil {
		t.Fatalf("owned-slot Set: %v", err)
	}
	var moved *ErrNotLeader
	if err := cl.Set(theirs, "v", at(0)); !errors.As(err, &moved) || moved.Leader != nodes[1].addr {
		t.Fatalf("foreign Set = %v, want MOVED %s", err, nodes[1].addr)
	}
	if _, err := cl.Get(theirs); !errors.As(err, &moved) || moved.Leader != nodes[1].addr {
		t.Fatalf("foreign Get = %v, want MOVED %s", err, nodes[1].addr)
	}
	if _, err := cl.History(theirs); !errors.As(err, &moved) {
		t.Fatalf("foreign History = %v, want MOVED", err)
	}

	// A mixed MSET is refused whole: nothing lands, not even the local key.
	muts := []ttkv.Mutation{
		{Key: mine + "/batch", Value: "1", Time: at(1)},
		{Key: theirs, Value: "2", Time: at(1)},
	}
	if err := cl.MSet(muts); !errors.As(err, &moved) {
		t.Fatalf("mixed MSet = %v, want MOVED", err)
	}
	if _, err := cl.Get(mine + "/batch"); !errors.Is(err, ErrNotFound) {
		t.Fatal("refused MSET partially applied")
	}

	topo, err := cl.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.SlotCount != slots {
		t.Fatalf("TOPO SlotCount = %d, want %d", topo.SlotCount, slots)
	}
	seen := map[string]bool{}
	for _, r := range topo.SlotRanges {
		seen[r.Addr] = true
	}
	if !seen[nodes[0].addr] || !seen[nodes[1].addr] {
		t.Fatalf("TOPO slot ranges %+v missing an owner", topo.SlotRanges)
	}
}

// TestClusterFenceRefusesWrites: a fenced slot refuses writes with RETRY
// (reads still serve), and MIGABORT lifts the fence.
func TestClusterFenceRefusesWrites(t *testing.T) {
	const slots = 16
	nodes := startSlotCluster(t, 1, slots)
	cl, err := Dial(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	key := keyOwnedBy(t, 0, 1, slots)
	slot := ttkv.KeySlot(key, slots)
	if err := cl.Set(key, "v", at(0)); err != nil {
		t.Fatal(err)
	}
	if err := cl.MigFence(context.Background(), slot); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(key, "w", at(1)); !errors.Is(err, ErrRetryable) {
		t.Fatalf("fenced Set = %v, want ErrRetryable", err)
	}
	if v, err := cl.Get(key); err != nil || v != "v" {
		t.Fatalf("fenced Get = %q, %v", v, err)
	}
	if err := cl.MigAbort(context.Background(), slot); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(key, "w", at(1)); err != nil {
		t.Fatalf("Set after abort: %v", err)
	}
}

// clusterOp is one recorded workload operation.
type clusterOp struct {
	key    string
	value  string
	time   time.Time
	delete bool
}

// TestSlotRoutingEquivalence is the routing equivalence suite: the same
// randomized workload, driven through the slot-aware client against 1, 2
// and 3 primaries, must leave per-key histories identical to a
// single-store baseline — and for the single-node cluster, a
// byte-identical store dump. The multi-node runs migrate slots between
// nodes mid-run, with the workload still writing.
func TestSlotRoutingEquivalence(t *testing.T) {
	const slots = 64
	for _, n := range []int{1, 2, 3} {
		n := n
		t.Run(fmt.Sprintf("primaries=%d", n), func(t *testing.T) {
			nodes := startSlotCluster(t, n, slots)
			ctx := context.Background()
			fc, err := DialCluster(ctx,
				WithPeers(clusterAddrs(nodes)...),
				WithMaxRedirects(60),
				WithRetryBackoff(2*time.Millisecond),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer fc.Close()
			if fc.SlotCount() != slots {
				t.Fatalf("client SlotCount = %d, want %d", fc.SlotCount(), slots)
			}

			rng := rand.New(rand.NewSource(int64(1000 + n)))
			keys := make([]string, 48)
			for i := range keys {
				keys[i] = fmt.Sprintf("eq/%c/k%02d", 'a'+i%5, i)
			}
			var (
				mu  sync.Mutex
				log []clusterOp
			)
			record := func(op clusterOp) {
				mu.Lock()
				log = append(log, op)
				mu.Unlock()
			}
			workload := func() {
				base := t0
				seqT := 0
				stamp := func() time.Time {
					seqT++
					return base.Add(time.Duration(seqT) * time.Millisecond)
				}
				for i := 0; i < 400; i++ {
					switch {
					case i%29 == 0 && i > 0:
						// Cross-node batch through msetSlots.
						muts := make([]ttkv.Mutation, 0, 4)
						for j := 0; j < 4; j++ {
							muts = append(muts, ttkv.Mutation{
								Key: keys[rng.Intn(len(keys))], Value: fmt.Sprintf("m%d-%d", i, j), Time: stamp(),
							})
						}
						if err := fc.MSet(ctx, muts); err != nil {
							t.Errorf("MSet op %d: %v", i, err)
							return
						}
						for _, m := range muts {
							record(clusterOp{key: m.Key, value: m.Value, time: m.Time})
						}
					case i%13 == 5:
						op := clusterOp{key: keys[rng.Intn(len(keys))], time: stamp(), delete: true}
						if err := fc.Delete(ctx, op.key, op.time); err != nil {
							t.Errorf("Delete op %d: %v", i, err)
							return
						}
						record(op)
					default:
						op := clusterOp{key: keys[rng.Intn(len(keys))], value: fmt.Sprintf("v%d", i), time: stamp()}
						if err := fc.Set(ctx, op.key, op.value, op.time); err != nil {
							t.Errorf("Set op %d: %v", i, err)
							return
						}
						record(op)
					}
				}
			}

			if n == 1 {
				workload()
			} else {
				// Migrate a few of node 0's slots to node 1 while the
				// workload runs: routing must ride through fence RETRYs and
				// post-flip MOVEDs without losing or duplicating a write.
				done := make(chan struct{})
				go func() {
					defer close(done)
					workload()
				}()
				for _, key := range keys[:3] {
					slot := ttkv.KeySlot(key, slots)
					src := nodes[slot*n/slots]
					dst := nodes[(slot*n/slots+1)%n]
					if src == dst {
						continue
					}
					if err := MigrateSlot(ctx, src.addr, dst.addr, slot, MigrateOptions{BatchSize: 8}); err != nil {
						t.Errorf("migrate slot %d: %v", slot, err)
					}
				}
				<-done
			}
			if t.Failed() {
				return
			}

			// Baseline: one store, same ops, same order.
			baseline := ttkv.NewSharded(4)
			hist := make(map[string][]clusterOp)
			for _, op := range log {
				var err error
				if op.delete {
					err = baseline.Delete(op.key, op.time)
				} else {
					err = baseline.Set(op.key, op.value, op.time)
				}
				if err != nil {
					t.Fatalf("baseline %+v: %v", op, err)
				}
				hist[op.key] = append(hist[op.key], op)
			}

			gotKeys, err := fc.Keys(ctx)
			if err != nil {
				t.Fatal(err)
			}
			wantKeys := baseline.Keys()
			if !reflect.DeepEqual(gotKeys, wantKeys) {
				t.Fatalf("cluster Keys = %v\nwant %v", gotKeys, wantKeys)
			}
			for key, ops := range hist {
				got, err := fc.History(ctx, key)
				if err != nil {
					t.Fatalf("History(%s): %v", key, err)
				}
				if len(got) != len(ops) {
					t.Fatalf("History(%s) = %d versions, want %d", key, len(got), len(ops))
				}
				for i, v := range got {
					if v.Value != ops[i].value || !v.Time.Equal(ops[i].time) || v.Deleted != ops[i].delete {
						t.Fatalf("History(%s)[%d] = %+v, want %+v", key, i, v, ops[i])
					}
				}
			}
			if n == 1 {
				if !bytes.Equal(storeDump(t, nodes[0].store), storeDump(t, baseline)) {
					t.Fatal("single-node cluster dump differs from baseline store")
				}
			}
		})
	}
}

// TestSlotMigrationChaos kills the migration driver at randomized points
// (context cancellation at 1–40ms) under a concurrent writer and reruns
// it until it completes, twice — moving the slot away and back. Every
// acknowledged write must survive exactly once: the target-side source-
// seq watermark turns a duplicated or reordered resend into a hard
// error, and the per-key history check below turns any dup or gap into a
// test failure.
func TestSlotMigrationChaos(t *testing.T) {
	const slots = 8
	nodes := startSlotCluster(t, 2, slots)
	ctx := context.Background()
	fc, err := DialCluster(ctx,
		WithPeers(clusterAddrs(nodes)...),
		WithMaxRedirects(80),
		WithRetryBackoff(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Keys all landing in one slot owned by node 0.
	var keys []string
	slot := -1
	for i := 0; len(keys) < 5 && i < 20000; i++ {
		k := fmt.Sprintf("chaos/k%d", i)
		s := ttkv.KeySlot(k, slots)
		if s >= slots/2 { // node 1's half
			continue
		}
		if slot == -1 {
			slot = s
		}
		if s == slot {
			keys = append(keys, k)
		}
	}
	if len(keys) < 5 {
		t.Fatal("could not find co-slotted keys")
	}

	var (
		mu    sync.Mutex
		acked = make(map[string][]clusterOp)
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			op := clusterOp{
				key:   keys[i%len(keys)],
				value: fmt.Sprintf("v%d", i),
				time:  t0.Add(time.Duration(i) * time.Millisecond),
			}
			if err := fc.Set(ctx, op.key, op.value, op.time); err != nil {
				t.Errorf("writer op %d: %v", i, err)
				return
			}
			mu.Lock()
			acked[op.key] = append(acked[op.key], op)
			mu.Unlock()
		}
	}()

	rng := rand.New(rand.NewSource(42))
	migrate := func(src, dst string) {
		for attempt := 0; ; attempt++ {
			if attempt > 60 {
				t.Fatal("migration never completed")
			}
			mctx, cancel := context.WithTimeout(ctx, time.Duration(1+rng.Intn(40))*time.Millisecond)
			err := MigrateSlot(mctx, src, dst, slot, MigrateOptions{BatchSize: 4})
			cancel()
			if err == nil {
				return
			}
		}
	}
	migrate(nodes[0].addr, nodes[1].addr)
	// A rerun of a completed migration must be a no-op.
	if err := MigrateSlot(ctx, nodes[0].addr, nodes[1].addr, slot, MigrateOptions{}); err != nil {
		t.Fatalf("rerun of completed migration: %v", err)
	}
	migrate(nodes[1].addr, nodes[0].addr)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for key, ops := range acked {
		total += len(ops)
		got, err := fc.History(ctx, key)
		if err != nil {
			t.Fatalf("History(%s): %v", key, err)
		}
		if len(got) != len(ops) {
			t.Fatalf("History(%s) = %d versions, want %d acked (dup or gap)", key, len(got), len(ops))
		}
		for i, v := range got {
			if v.Value != ops[i].value || !v.Time.Equal(ops[i].time) {
				t.Fatalf("History(%s)[%d] = %+v, want %+v", key, i, v, ops[i])
			}
		}
	}
	if total == 0 {
		t.Fatal("no writes were acknowledged during the chaos run")
	}
	t.Logf("%d acked writes across 2 interrupted migrations of slot %d", total, slot)
}

// TestDoReturnsPartialApplyImmediately is the regression test for the
// redirect-loop bug: *ErrPartialApply is an application-level outcome on
// a healthy connection, but the failover do loop had no case for it and
// fell into the transport-failure default — dropping the connection and
// burning a redirect hop per retry.
func TestDoReturnsPartialApplyImmediately(t *testing.T) {
	store := ttkv.NewSharded(4)
	rl := ttkv.NewReplLog(nil)
	if err := store.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.EnableReplication(rl, ReplicationConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetAdvertise(ln.Addr().String())
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	ctx := context.Background()
	fc, err := DialCluster(ctx, WithPeers(ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	calls := 0
	want := &ErrPartialApply{Applied: 3, Msg: "boom"}
	err = fc.do(ctx, func(ctx context.Context, cl *Client) error {
		calls++
		return want
	})
	var partial *ErrPartialApply
	if !errors.As(err, &partial) || partial.Applied != 3 {
		t.Fatalf("do = %v, want the ErrPartialApply back", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times, want exactly 1 (no retry)", calls)
	}
	if fc.Attached() == "" {
		t.Fatal("healthy connection was dropped on a partial apply")
	}
}

// TestSemiSyncGateUsesOwnWriteSeq is the regression test for the gated-
// watermark inflation bug: the gate waited on store.CurrentSeq() read
// after the apply, so a concurrent writer minting the next seq inflated
// the watermark and a write could spuriously RETRY even though its own
// seq was acked. The gate must wait on the write's own minted seq.
func TestSemiSyncGateUsesOwnWriteSeq(t *testing.T) {
	store := ttkv.NewSharded(4)
	rl := ttkv.NewReplLog(nil)
	if err := store.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.EnableReplication(rl, ReplicationConfig{})
	srv.SetSemiSync(SemiSyncConfig{Acks: 1, Timeout: 100 * time.Millisecond})

	// Two applied writes; a replica session has acked only the first.
	if err := store.Set("k1", "v", at(0)); err != nil {
		t.Fatal(err)
	}
	if err := store.Set("k2", "v", at(1)); err != nil {
		t.Fatal(err)
	}
	if store.CurrentSeq() != 2 {
		t.Fatalf("CurrentSeq = %d, want 2", store.CurrentSeq())
	}
	sess := &replSession{replicaID: "phys-1"}
	sess.ackedSeq.Store(1)
	srv.mu.Lock()
	srv.replSessions = map[*replSession]struct{}{sess: {}}
	srv.mu.Unlock()

	// The write that minted seq 1 must pass instantly: its own seq is
	// acked, even though the store-wide watermark (2) is not.
	start := time.Now()
	if _, ok := srv.semiSyncGate(&connState{lastWriteSeq: 1}); !ok {
		t.Fatal("write with acked own-seq got a spurious RETRY (gated on the inflated watermark)")
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("acked write waited %v, want an instant pass", elapsed)
	}

	// The unacked seq-2 write must still RETRY.
	if retry, ok := srv.semiSyncGate(&connState{lastWriteSeq: 2}); ok || retry.Kind != KindError {
		t.Fatalf("unacked write passed the gate (retry=%+v ok=%v)", retry, ok)
	}
	// Writes that mint nothing (lastWriteSeq 0, e.g. RFIX) fall back to
	// the conservative store watermark.
	if _, ok := srv.semiSyncGate(&connState{lastWriteSeq: 0}); ok {
		t.Fatal("no-mint write passed the gate against an unacked watermark")
	}
}

// TestSemiSyncNoSpuriousRetryUnderRacingWriters drives concurrent
// writers against a semi-sync primary with a healthy replica: every
// write must be acknowledged without a RETRY.
func TestSemiSyncNoSpuriousRetryUnderRacingWriters(t *testing.T) {
	store := ttkv.NewSharded(4)
	rl := ttkv.NewReplLog(nil)
	if err := store.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.EnableReplication(rl, ReplicationConfig{HeartbeatInterval: 20 * time.Millisecond})
	srv.SetSemiSync(SemiSyncConfig{Acks: 1, Timeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	addr := ln.Addr().String()
	_, rc, _ := startReplicaNode(t, addr, nil)
	defer rc.Stop()

	// Wait until the replica is attached and acking.
	cl0, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl0.Close()
	waitFor(t, 5*time.Second, "replica acking", func() bool {
		return cl0.Set("/warm", "v", time.Now()) == nil
	})

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			base := time.Now()
			for i := 0; i < 30; i++ {
				if err := cl.Set(fmt.Sprintf("/race/%d/%d", g, i), "v",
					base.Add(time.Duration(i)*time.Millisecond)); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAckedReplicasDedupesByRunID is the regression test for the
// session-counting bug: a physical replica reconnecting before its stale
// feed is reaped holds two sessions, which used to satisfy K=2 alone.
// Sessions must dedupe by replica run ID; observer sessions never count.
func TestAckedReplicasDedupesByRunID(t *testing.T) {
	srv := NewServer(ttkv.New())
	mk := func(id string, acked uint64) *replSession {
		sess := &replSession{replicaID: id}
		sess.ackedSeq.Store(acked)
		return sess
	}
	srv.mu.Lock()
	srv.replSessions = map[*replSession]struct{}{
		mk("phys-A", 5): {}, // stale feed, same physical replica...
		mk("phys-A", 7): {}, // ...freshly reconnected
		mk("phys-B", 4): {}, // behind: not acked at 5
		mk("", 9):       {}, // legacy handshake: counts per-session
		mk("-", 99):     {}, // analytics observer: never counts
	}
	srv.mu.Unlock()

	if got := srv.ackedReplicas(5); got != 2 {
		t.Fatalf("ackedReplicas(5) = %d, want 2 (phys-A once + legacy)", got)
	}
	if got := srv.ackedReplicas(8); got != 1 {
		t.Fatalf("ackedReplicas(8) = %d, want 1 (legacy only)", got)
	}
	if got := srv.ackedReplicas(100); got != 0 {
		t.Fatalf("ackedReplicas(100) = %d, want 0 (observer excluded)", got)
	}
}

// TestSlotMapPrefersOwnClaims is the regression test for the stale-
// advisory bug: a TOPO sweep used to fold every peer's slot map in probe
// order, so a third party's static -slot-peers view of a range could
// clobber the live owner's own claim installed moments earlier — after a
// failover the client chased the dead old primary until its hop budget
// ran out. A node's claim about the slots it itself serves must win over
// hearsay regardless of sweep order.
func TestSlotMapPrefersOwnClaims(t *testing.T) {
	hearsay := Topology{
		Self:      "c:1",
		SlotCount: 8,
		SlotRanges: []SlotRange{
			{Lo: 0, Hi: 3, Addr: "dead:1"}, // stale advisory about partition 0
			{Lo: 4, Hi: 7, Addr: "c:1"},    // its own slots
		},
	}
	promoted := Topology{
		Self:      "a2:1",
		SlotCount: 8,
		SlotRanges: []SlotRange{
			{Lo: 0, Hi: 3, Addr: "a2:1"},  // authoritative: it serves these now
			{Lo: 4, Hi: 7, Addr: "dead2"}, // and has its own stale view of others
		},
	}
	for name, order := range map[string][]Topology{
		"hearsay-last":  {promoted, hearsay},
		"hearsay-first": {hearsay, promoted},
	} {
		fc := &FailoverClient{}
		fc.mu.Lock()
		for _, topo := range order {
			fc.noteSlotRangesLocked(topo)
		}
		fc.mu.Unlock()
		if got := fc.SlotOwner(0); got != "a2:1" {
			t.Fatalf("%s: owner(0) = %q, want the self-claimed a2:1", name, got)
		}
		if got := fc.SlotOwner(5); got != "c:1" {
			t.Fatalf("%s: owner(5) = %q, want the self-claimed c:1", name, got)
		}
	}
	// A replica's ranges are labeled with its group leader, not itself;
	// that claim is authoritative for the group too.
	fc := &FailoverClient{}
	fc.mu.Lock()
	fc.noteSlotRangesLocked(hearsay)
	fc.noteSlotRangesLocked(Topology{
		Self: "a2:1", Leader: "a1:1", SlotCount: 8,
		SlotRanges: []SlotRange{{Lo: 0, Hi: 3, Addr: "a1:1"}},
	})
	fc.mu.Unlock()
	if got := fc.SlotOwner(2); got != "a1:1" {
		t.Fatalf("owner(2) = %q, want the group-leader claim a1:1", got)
	}
}

// TestReadOnlyFallbackKeepsLeaderUnknown is the regression test for the
// adopt bug: falling back to a reachable read-only node used to record
// that node as the believed leader, so Leader() lied and the next write
// re-dialed the known-read-only node as if it were the primary. The
// attachment and the believed leader are separate facts.
func TestReadOnlyFallbackKeepsLeaderUnknown(t *testing.T) {
	store := ttkv.NewSharded(4)
	if err := store.Set("/ro/k", "v", at(0)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.SetReadOnly(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv.SetAdvertise(addr)
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	ctx := context.Background()
	fc, err := DialCluster(ctx,
		WithPeers(addr),
		WithDialTimeout(200*time.Millisecond),
		WithMaxRedirects(2),
		WithRetryBackoff(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	if got := fc.Attached(); got != addr {
		t.Fatalf("Attached = %q, want %q", got, addr)
	}
	if got := fc.Leader(); got != "" {
		t.Fatalf("Leader = %q, want empty: a read-only fallback is not a leader", got)
	}
	// Reads work through the fallback.
	if v, err := fc.Get(ctx, "/ro/k"); err != nil || v != "v" {
		t.Fatalf("Get via fallback = %q, %v", v, err)
	}
	// Writes fail read-only after the budget — and must not have taught
	// the client that the replica leads.
	if err := fc.Set(ctx, "/ro/w", "x", at(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Set via fallback = %v, want ErrReadOnly", err)
	}
	if got := fc.Leader(); got != "" {
		t.Fatalf("Leader after failed write = %q, want still empty", got)
	}
}

// TestMergedAnalyticsMatchSingleEngine checks the acceptance bar for
// merged global analytics: an engine fed by draining every node of a
// 3-primary partitioned cluster must produce exactly the clusters of a
// single engine fed the same workload directly — including across an
// incremental drain and a live slot migration (whose re-minted records
// the drainer must dedupe, not double-count).
func TestMergedAnalyticsMatchSingleEngine(t *testing.T) {
	const slots = 16
	nodes := startSlotCluster(t, 3, slots)
	ctx := context.Background()
	fc, err := DialCluster(ctx,
		WithPeers(clusterAddrs(nodes)...),
		WithMaxRedirects(60),
		WithRetryBackoff(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Record every op; baselines are rebuilt per comparison, because
	// AdvanceTo permanently closes an engine's windows — a mid-test
	// advance would split later writes into a second episode.
	type obsOp struct {
		key string
		ts  time.Time
	}
	var ops []obsOp
	seqT := 0
	stamp := func() time.Time {
		seqT++
		return t0.Add(time.Duration(seqT) * 5 * time.Millisecond)
	}
	write := func(key, val string) {
		ts := stamp()
		if err := fc.Set(ctx, key, val, ts); err != nil {
			t.Fatalf("Set %s: %v", key, err)
		}
		ops = append(ops, obsOp{key: key, ts: ts})
	}
	// Keys spread across all three nodes; co-modification episodes bind
	// pairs whose members live on different nodes.
	pairs := [][2]string{
		{keyOwnedBy(t, 0, 3, slots), keyOwnedBy(t, 1, 3, slots)},
		{keyOwnedBy(t, 1, 3, slots) + "/x", keyOwnedBy(t, 2, 3, slots)},
		{keyOwnedBy(t, 2, 3, slots) + "/y", keyOwnedBy(t, 0, 3, slots) + "/z"},
	}
	for round := 0; round < 6; round++ {
		for _, p := range pairs {
			write(p[0], fmt.Sprintf("r%d", round))
			write(p[1], fmt.Sprintf("r%d", round))
		}
	}

	// compare advances the engine-under-test exactly once (it must not
	// receive further writes after this) against a baseline rebuilt from
	// the op log.
	compare := func(drained *core.Engine, stage string) {
		t.Helper()
		baseline := core.NewEngine(core.EngineConfig{})
		for _, op := range ops {
			baseline.ObserveWrite(op.key, op.ts, false)
		}
		horizon := t0.Add(time.Hour)
		baseline.AdvanceTo(horizon)
		drained.AdvanceTo(horizon)
		want := baseline.Recluster()
		got := drained.Recluster()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: drained clusters = %+v\nwant %+v", stage, got, want)
		}
	}

	merged := core.NewEngine(core.EngineConfig{})
	drainer, err := NewAnalyticsDrainer(AnalyticsDrainerConfig{
		Engine: merged,
		Peers:  clusterAddrs(nodes),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := drainer.DrainOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// Migrate the slot of the first pair's first key from node 0 to node
	// 1, write more episodes, and drain incrementally: the migrated
	// history now streams from two nodes, and must count once.
	slot := ttkv.KeySlot(pairs[0][0], slots)
	if err := MigrateSlot(ctx, nodes[0].addr, nodes[1].addr, slot, MigrateOptions{}); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	for round := 6; round < 9; round++ {
		for _, p := range pairs {
			write(p[0], fmt.Sprintf("r%d", round))
			write(p[1], fmt.Sprintf("r%d", round))
		}
	}
	if err := drainer.DrainOnce(ctx); err != nil {
		t.Fatal(err)
	}
	compare(merged, "incremental drains across migration")

	// A from-scratch drain after the migration must also match: the
	// moved records exist in both nodes' histories but dedupe to one.
	fresh := core.NewEngine(core.EngineConfig{})
	if err := DrainAnalytics(ctx, fresh, clusterAddrs(nodes)); err != nil {
		t.Fatal(err)
	}
	compare(fresh, "fresh drain after migration")
}

// TestPairStatsMergeServesGlobalCorr: the additive PairStats path — each
// node's local engine stats merged into one — must answer cross-node
// correlation queries identically to draining the streams, for episodes
// that land whole on single nodes.
func TestPairStatsMergeServesGlobalCorr(t *testing.T) {
	a := core.NewEngine(core.EngineConfig{})
	b := core.NewEngine(core.EngineConfig{})
	single := core.NewEngine(core.EngineConfig{})
	// Node-local episodes: {p,q} co-modified on node A, then on node B —
	// offset well past the grouping window, so no co-occurrence window
	// spans nodes. The additive merge reconstructs node-whole windows
	// only; reassembling node-spanning windows is the drainer's job.
	for round := 0; round < 4; round++ {
		base := t0.Add(time.Duration(round) * time.Minute)
		for i, eng := range []*core.Engine{a, b} {
			ts := base.Add(time.Duration(i) * 20 * time.Second)
			k1, k2 := fmt.Sprintf("n%d/p", i), fmt.Sprintf("n%d/q", i)
			eng.ObserveWrite(k1, ts, false)
			eng.ObserveWrite(k2, ts.Add(time.Millisecond), false)
			single.ObserveWrite(k1, ts, false)
			single.ObserveWrite(k2, ts.Add(time.Millisecond), false)
		}
	}
	horizon := t0.Add(time.Hour)
	for _, eng := range []*core.Engine{a, b, single} {
		eng.AdvanceTo(horizon)
		eng.Flush()
	}
	merged := a.StatsClone()
	merged.Merge(b.StatsClone())
	for _, pair := range [][2]string{{"n0/p", "n0/q"}, {"n1/p", "n1/q"}, {"n0/p", "n1/q"}} {
		want := single.Correlation(pair[0], pair[1])
		if got := merged.KeyCorrelation(pair[0], pair[1]); got != want {
			t.Fatalf("merged Corr(%s,%s) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}
