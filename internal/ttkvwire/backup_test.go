package ttkvwire

import (
	"errors"
	"net"
	"strings"
	"testing"

	"ocasta/internal/backup"
	"ocasta/internal/ttkv"
)

// startBackupServer spins up a server with a backup manager attached,
// the way ttkvd -backup-dir wires them.
func startBackupServer(t testing.TB, readOnly bool) (*ttkv.Store, *backup.Manager, *Client) {
	t.Helper()
	store := ttkv.New()
	mgr, err := backup.NewManager(store, t.TempDir(), backup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.SetBackups(mgr)
	if readOnly {
		srv.SetReadOnly(true)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		<-done
	})
	return store, mgr, client
}

func TestBackupCommandsOverWire(t *testing.T) {
	store, mgr, c := startBackupServer(t, false)

	for i := 0; i < 50; i++ {
		if err := c.Set("k", "v", at(i)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := c.Backup("") // auto on an empty directory = full
	if err != nil {
		t.Fatalf("Backup: %v", err)
	}
	if info.Kind != "full" || info.Base != 0 || info.UpTo != 50 || info.Records != 50 || info.Parent != "" {
		t.Fatalf("full backup info = %+v", info)
	}
	if info.Files < 1 || info.Bytes <= 0 || info.Created.IsZero() {
		t.Fatalf("full backup info = %+v", info)
	}

	for i := 50; i < 80; i++ {
		if err := c.Set("k2", "v", at(i)); err != nil {
			t.Fatal(err)
		}
	}
	incr, err := c.Backup("incr")
	if err != nil {
		t.Fatalf("Backup incr: %v", err)
	}
	if incr.Kind != "incr" || incr.Base != 50 || incr.UpTo != 80 || incr.Parent != info.ID {
		t.Fatalf("incr backup info = %+v", incr)
	}

	// Nothing new: the incremental refuses rather than padding the chain.
	if _, err := c.Backup("incr"); err == nil || !strings.Contains(err.Error(), "no new records") {
		t.Fatalf("Backup incr with nothing new: %v", err)
	}

	list, err := c.Backups()
	if err != nil {
		t.Fatalf("Backups: %v", err)
	}
	if len(list) != 2 || list[0].ID != info.ID || list[1].ID != incr.ID {
		t.Fatalf("Backups = %+v", list)
	}

	// The archived set restores to the server's exact state.
	restored, _, err := backup.Restore(mgr.Dir(), backup.Target{}, 0)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.CurrentSeq() != store.CurrentSeq() {
		t.Fatalf("restored seq %d, want %d", restored.CurrentSeq(), store.CurrentSeq())
	}

	if _, err := c.Backup("bogus"); err == nil {
		t.Fatal("BACKUP BOGUS must fail")
	}
}

func TestBackupServedOnReadOnlyReplica(t *testing.T) {
	store, mgr, c := startBackupServer(t, true)

	// Writes through the wire are rejected (read-only), but the store
	// still advances via replication-style applies.
	if err := c.Set("k", "v", at(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Set on read-only server: %v, want ErrReadOnly", err)
	}
	recs := []ttkv.ReplRecord{
		{Seq: 1, Key: "a", Value: "1", Time: at(1)},
		{Seq: 2, Key: "b", Value: "2", Time: at(2)},
	}
	if err := store.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}

	// BACKUP and BSTAT are read-side commands: a replica serves them.
	info, err := c.Backup("full")
	if err != nil {
		t.Fatalf("Backup on read-only replica: %v", err)
	}
	if info.UpTo != 2 || info.Records != 2 {
		t.Fatalf("info = %+v", info)
	}
	list, err := c.Backups()
	if err != nil || len(list) != 1 {
		t.Fatalf("Backups = %+v, %v", list, err)
	}
	if rep, err := mgr.Verify(); err != nil || !rep.OK() {
		t.Fatalf("verify: %+v, %v", rep, err)
	}
}

func TestBackupDisabled(t *testing.T) {
	store := ttkv.New()
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }() //nolint:errcheck — closed below
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { c.Close(); srv.Close(); <-done }()

	if _, err := c.Backup(""); err == nil || !strings.Contains(err.Error(), "backups disabled") {
		t.Fatalf("Backup on server without manager: %v", err)
	}
	if _, err := c.Backups(); err == nil || !strings.Contains(err.Error(), "backups disabled") {
		t.Fatalf("Backups on server without manager: %v", err)
	}
}
