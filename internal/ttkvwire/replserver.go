package ttkvwire

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"ocasta/internal/ttkv"
)

// ReplicationConfig tunes the primary side of replication. Zero values
// select the defaults noted per field.
type ReplicationConfig struct {
	// OutboxBytes bounds each replica's outbox backlog; a replica that
	// falls further behind is disconnected and must reconnect (it resumes
	// from its last applied sequence). Default ttkv.DefaultOutboxBytes.
	OutboxBytes int
	// HeartbeatInterval is how often an idle feed sends its durable
	// watermark, letting replicas measure lag and detect a dead primary.
	// Default 500ms.
	HeartbeatInterval time.Duration
	// WriteTimeout bounds each frame write so a wedged replica socket
	// cannot hang the feed goroutine forever. Default 30s.
	WriteTimeout time.Duration
	// Segments, when the store's history is kept in a segmented log fed
	// by the same ReplLog, lets SYNC's snapshot phase read catch-up
	// ranges from the covering segment files (O(covering segments))
	// instead of scanning the whole keyspace per window. Ranges the
	// files cannot serve fall back to Store.ReplSnapshot transparently.
	Segments *ttkv.SegmentedAOF
}

func (c ReplicationConfig) withDefaults() ReplicationConfig {
	if c.OutboxBytes <= 0 {
		c.OutboxBytes = ttkv.DefaultOutboxBytes
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// snapshotRange reads one snapshot window for SYNC: from the segment
// files when configured and they cover the range, otherwise from the
// store's lock-free keyspace scan. The two sources are equivalent
// record-for-record (the segmented log is fed by the same ReplLog that
// minted the sequence numbers); the segment read just avoids rescanning
// the entire store for every window of a large resync.
func (s *Server) snapshotRange(cfg ReplicationConfig, lo, hi uint64) []ttkv.ReplRecord {
	if cfg.Segments != nil {
		if recs, err := cfg.Segments.RangeRecords(lo, hi); err == nil {
			return recs
		}
	}
	return s.store.ReplSnapshot(lo, hi)
}

// EnableReplication makes the server a replication primary: SYNC streams
// a snapshot plus a live committed-record tail to each replica, and
// REPLSTAT reports per-replica progress. rl must be attached to the
// served store (Store.AttachReplLog). Safe at any time — failover
// promotes live servers — and also clears any replica status source from
// a previous replica role.
//
// The run ID identifies this primary incarnation: a replica that last
// synced with a different incarnation cannot trust its local prefix (a
// restarted primary may have re-minted sequence numbers differently) and
// is told to full-resync from scratch.
func (s *Server) EnableReplication(rl *ttkv.ReplLog, cfg ReplicationConfig) {
	s.mu.Lock()
	s.replLog = rl
	s.replCfg = cfg.withDefaults()
	s.runID = newRunID()
	s.replicaStat = nil
	s.mu.Unlock()
}

// DisableReplication ends the primary role: SYNC is refused and every
// connected replica feed is torn down (the replicas reconnect elsewhere
// per their own configuration). Used on demotion, before the node starts
// replicating from the new leader.
func (s *Server) DisableReplication() {
	s.mu.Lock()
	s.replLog = nil
	s.runID = ""
	sessions := make([]*replSession, 0, len(s.replSessions))
	for sess := range s.replSessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		// Closing the outbox wakes the feed's writer loop, which closes
		// the connection and unregisters the session.
		sess.sub.Close()
	}
}

// replState snapshots the primary-role state for one handshake or status
// reply; rl is nil when replication is not (or no longer) enabled.
func (s *Server) replState() (rl *ttkv.ReplLog, cfg ReplicationConfig, runID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replLog, s.replCfg, s.runID
}

// SetReadOnly makes the server reject mutating commands (SET, MSET, DEL,
// RFIX) with a typed READONLY/MOVED error: the replica role. Reads,
// history, analytics (CLUSTERS/CORR), and repair diagnosis stay local;
// only the fix must be applied on the primary. Safe at any time —
// failover flips it on promotion and demotion.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether mutating commands are currently rejected.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// ReplicaStatusSource is how the serving layer asks the replication
// client for its live state; *ReplicaClient implements it.
type ReplicaStatusSource interface{ ReplicaStatus() ReplicaStatus }

// SetReplicaStatus wires a replica's sync client into REPLSTAT. Safe at
// any time; pass nil to clear (promotion does, via EnableReplication).
func (s *Server) SetReplicaStatus(src ReplicaStatusSource) {
	s.mu.Lock()
	s.replicaStat = src
	s.mu.Unlock()
}

// newRunID returns a random 16-hex-digit primary incarnation ID.
func newRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock; uniqueness across restarts is what
		// matters, not unpredictability.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// replObserverID is the replica ID sentinel an observer session (e.g. an
// analytics drainer) sends in its SYNC handshake: it receives the stream
// but is never counted as a replica by the semi-sync gate.
const replObserverID = "-"

// replSession is one live replica feed, tracked for REPLSTAT.
type replSession struct {
	addr string
	sub  *ttkv.ReplSub
	// replicaID is the physical replica's persistent run ID from the SYNC
	// handshake ("" on the legacy 2-arg handshake, replObserverID for
	// observers). The semi-sync gate dedupes sessions by it.
	replicaID string
	// snapshotting flips to 0 once the handshake snapshot has streamed.
	snapshotting atomic.Bool
	sentSeq      atomic.Uint64
	ackedSeq     atomic.Uint64
}

func (s *Server) addReplSession(sess *replSession) {
	s.mu.Lock()
	if s.replSessions == nil {
		s.replSessions = make(map[*replSession]struct{})
	}
	s.replSessions[sess] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) removeReplSession(sess *replSession) {
	s.mu.Lock()
	delete(s.replSessions, sess)
	s.mu.Unlock()
}

// isMutating reports whether cmd writes to the store.
func isMutating(cmd string) bool {
	switch cmd {
	case "SET", "MSET", "DEL", "RFIX", "MIGAPPLY":
		return true
	}
	return false
}

// trySync handles a SYNC request: on a successful handshake it takes the
// connection over as a push stream and only returns when the feed ends
// (replica gone, outbox overflow, or server shutdown), reporting
// streamed=true: the connection is no longer in the request/response
// protocol and must be closed. On a refused handshake the error reply has
// been written and the connection continues serving normal requests.
func (s *Server) trySync(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, args []string) (streamed bool) {
	refuse := func(msg string) bool {
		if err := WriteValue(bw, errValue(msg)); err != nil {
			return true // connection is broken; stop serving it
		}
		return bw.Flush() != nil
	}
	rl, cfg, runID := s.replState()
	if rl == nil {
		return refuse("ERR replication not enabled on this server")
	}
	if len(args) != 2 && len(args) != 3 {
		return refuse("ERR usage: SYNC afterSeq runid [replicaid]")
	}
	afterSeq, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		return refuse("ERR bad afterSeq: " + args[0])
	}
	replicaID := ""
	if len(args) == 3 {
		replicaID = args[2]
	}
	resume := args[1] == runID
	if !resume {
		// Unknown or stale incarnation: the replica's local prefix cannot
		// be trusted; it must reset and take everything from scratch.
		afterSeq = 0
	}

	// Registering the outbox fixes the snapshot/tail boundary: everything
	// at or below `from` is committed and visible in the store (shipped as
	// a snapshot below); everything above arrives through the outbox.
	sub, from := rl.Subscribe(cfg.OutboxBytes)
	if afterSeq > from {
		sub.Close()
		return refuse(fmt.Sprintf("ERR replica ahead of primary (afterSeq %d > durable %d)", afterSeq, from))
	}
	status := "CONTINUE"
	if !resume {
		status = "FULLRESYNC"
	}
	// The trailing epoch is the failover fencing term; pre-failover
	// replicas ignore unknown trailing fields.
	if err := WriteValue(bw, simple(fmt.Sprintf("%s %s %d %d", status, runID, from, rl.Epoch()))); err != nil {
		sub.Close()
		return true
	}
	if err := bw.Flush(); err != nil {
		sub.Close()
		return true
	}

	sess := &replSession{addr: conn.RemoteAddr().String(), sub: sub, replicaID: replicaID}
	sess.snapshotting.Store(true)
	sess.ackedSeq.Store(afterSeq)
	sess.sentSeq.Store(afterSeq)
	s.addReplSession(sess)

	// The ack reader owns the inbound half: replicas push 'A' frames with
	// their applied watermark. Any read error (replica died, server
	// closing the conn) tears the feed down by closing the outbox, which
	// wakes the writer loop below.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		defer sub.Close()
		for {
			kind, _, seq, err := readReplFrame(br)
			if err != nil || kind != replFrameAck {
				return
			}
			sess.ackedSeq.Store(seq)
			s.noteReplicaAck() // wake semi-sync waiters to re-count
		}
	}()

	s.streamFeed(conn, bw, rl, cfg, sub, sess, afterSeq, from)

	s.removeReplSession(sess)
	sub.Close()
	conn.Close() // unblocks the ack reader if it has not errored yet
	<-ackDone
	return true
}

// streamFeed ships the snapshot range (afterSeq, from] and then the live
// outbox tail until the feed dies.
func (s *Server) streamFeed(conn net.Conn, bw *bufio.Writer, rl *ttkv.ReplLog, cfg ReplicationConfig, sub *ttkv.ReplSub, sess *replSession, afterSeq, from uint64) {
	writeFrames := func(payloads [][]byte) error {
		conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
		buf := make([]byte, 0, replFrameChunk)
		for _, p := range payloads {
			if len(buf) > 0 && len(buf)+len(p) > replFrameChunk {
				if err := writeReplData(bw, buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
			buf = append(buf, p...)
		}
		if len(buf) > 0 {
			if err := writeReplData(bw, buf); err != nil {
				return err
			}
		}
		return bw.Flush()
	}

	// Snapshot phase: the committed range the outbox will not deliver,
	// streamed in bounded sequence windows so a full-history resync never
	// materializes the whole store at once per syncing replica (each
	// window holds at most snapSeqWindow record headers — values are
	// string references, not copies; ranges are disjoint and ascending,
	// so global sequence order is preserved). Each window costs one
	// store scan, so resync is O(versions x windows); the window is
	// sized large enough that even a multi-gigabyte history needs only a
	// handful of scans. A heartbeat precedes each scan so a replica's
	// read deadline survives scan-induced gaps between frames. Snapshot
	// records carry no atomic-batch flags: catch-up replays history in
	// record order, exactly as a primary AOF replay does — the live-tail
	// boundary itself is batch-aligned (see ReplLog.appendSeqBatch), so a
	// revert in flight at resume time is never split across it.
	const snapSeqWindow = 1 << 20
	var buf []byte
	for lo := afterSeq; lo < from; {
		hi := lo + snapSeqWindow
		if hi > from || hi < lo { // second test: uint64 wrap safety
			hi = from
		}
		conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
		if err := writeReplSeq(bw, replFrameHeartbeat, from); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		snap := s.snapshotRange(cfg, lo, hi)
		lo = hi
		for i := range snap {
			buf = ttkv.AppendReplRecord(buf, snap[i])
			if len(buf) >= replFrameChunk || i == len(snap)-1 {
				conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
				if err := writeReplData(bw, buf); err != nil {
					return
				}
				if err := bw.Flush(); err != nil {
					return
				}
				buf = buf[:0]
			}
		}
	}
	sess.sentSeq.Store(from)
	sess.snapshotting.Store(false)

	// Live tail: committed records as the outbox delivers them, a
	// heartbeat with the durable watermark when idle.
	for {
		data, lastSeq, err := sub.Next(cfg.HeartbeatInterval)
		if err != nil {
			return
		}
		if data == nil {
			conn.SetWriteDeadline(time.Now().Add(cfg.WriteTimeout))
			if err := writeReplSeq(bw, replFrameHeartbeat, rl.DurableSeq()); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			continue
		}
		if err := writeFrames(data); err != nil {
			return
		}
		sess.sentSeq.Store(lastSeq)
	}
}

// cmdReplStat serves REPLSTAT: the node's replication role and progress.
//
//	role "none":    *2  $none, :currentSeq
//	role "primary": *5+N $primary, $runid, :appendedSeq, :durableSeq,
//	                per replica *6: $addr, $state, :acked, :sent, :lagRecords, :lagBytes
//	role "replica": *7  $replica, $primaryAddr, $state, :appliedSeq,
//	                :primaryDurableSeq, :lagRecords, :reconnects
func (s *Server) cmdReplStat(args []string) Value {
	if len(args) != 0 {
		return errValue("ERR usage: REPLSTAT")
	}
	s.mu.Lock()
	stat := s.replicaStat
	s.mu.Unlock()
	if stat != nil {
		st := stat.ReplicaStatus()
		lag := int64(0)
		if st.PrimarySeq > st.AppliedSeq {
			lag = int64(st.PrimarySeq - st.AppliedSeq)
		}
		return array(
			bulk("replica"), bulk(st.Primary), bulk(st.State),
			bulkInt(int64(st.AppliedSeq)), bulkInt(int64(st.PrimarySeq)),
			bulkInt(lag), bulkInt(int64(st.Reconnects)),
		)
	}
	rl, _, runID := s.replState()
	if rl == nil {
		return array(bulk("none"), bulkInt(int64(s.store.CurrentSeq())))
	}
	durable := rl.DurableSeq()
	out := []Value{
		bulk("primary"), bulk(runID),
		bulkInt(int64(rl.AppendedSeq())), bulkInt(int64(durable)),
	}
	s.mu.Lock()
	sessions := make([]*replSession, 0, len(s.replSessions))
	for sess := range s.replSessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		state := "streaming"
		if sess.snapshotting.Load() {
			state = "snapshot"
		}
		acked := sess.ackedSeq.Load()
		lag := int64(0)
		if durable > acked {
			lag = int64(durable - acked)
		}
		out = append(out, array(
			bulk(sess.addr), bulk(state),
			bulkInt(int64(acked)), bulkInt(int64(sess.sentSeq.Load())),
			bulkInt(lag), bulkInt(int64(sess.sub.QueuedBytes())),
		))
	}
	return array(out...)
}
