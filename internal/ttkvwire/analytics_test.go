package ttkvwire

import (
	"context"
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"

	"ocasta/internal/core"
	"ocasta/internal/ttkv"
)

// startAnalyticsServer spins up a server whose store feeds a streaming
// analytics engine, the way ttkvd wires them.
func startAnalyticsServer(t testing.TB) (*ttkv.Store, *core.Engine, *Client) {
	t.Helper()
	store := ttkv.New()
	engine := core.NewEngine(core.EngineConfig{})
	store.SetStatsObserver(engine)
	srv := NewServer(store)
	srv.SetAnalytics(engine)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		<-done
	})
	return store, engine, client
}

func TestClustersAndCorrOverWire(t *testing.T) {
	_, engine, c := startAnalyticsServer(t)

	// Two co-modification episodes of {a,b} plus an unrelated singleton.
	for _, sec := range []int{0, 10} {
		if err := c.Set("a", "1", at(sec)); err != nil {
			t.Fatal(err)
		}
		if err := c.Set("b", "2", at(sec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Set("solo", "3", at(20)); err != nil {
		t.Fatal(err)
	}
	// Close the final window (watermark past the last write) and publish.
	engine.AdvanceTo(at(60))
	engine.Recluster()

	snap, err := c.Clusters(0)
	if err != nil {
		t.Fatalf("Clusters: %v", err)
	}
	if snap.Version == 0 {
		t.Fatalf("snapshot version = 0, want > 0 after recluster")
	}
	var keys [][]string
	for _, cl := range snap.Clusters {
		keys = append(keys, cl.Keys)
	}
	want := [][]string{{"a", "b"}, {"solo"}}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("cluster keys = %v, want %v", keys, want)
	}
	// {a,b} were co-modified in both episodes: ModCount 2+2, last episode
	// at second 10.
	if snap.Clusters[0].ModCount != 4 {
		t.Errorf("cluster {a,b} ModCount = %d, want 4", snap.Clusters[0].ModCount)
	}
	if got := snap.Clusters[0].LastModified; !got.Equal(at(10)) {
		t.Errorf("cluster {a,b} LastModified = %v, want %v", got, at(10))
	}

	// minsize filters the singleton.
	multi, err := c.Clusters(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Clusters) != 1 || !reflect.DeepEqual(multi.Clusters[0].Keys, []string{"a", "b"}) {
		t.Fatalf("Clusters(2) = %+v, want just {a,b}", multi.Clusters)
	}

	// Live correlation: a and b always co-modified -> 2; unrelated -> 0.
	if corr, err := c.Correlation("a", "b"); err != nil || corr != 2 {
		t.Fatalf("Correlation(a,b) = %v, %v; want 2", corr, err)
	}
	if corr, err := c.Correlation("a", "solo"); err != nil || corr != 0 {
		t.Fatalf("Correlation(a,solo) = %v, %v; want 0", corr, err)
	}

	// Version must advance with a recluster after new data.
	if err := c.Set("c", "9", at(30)); err != nil {
		t.Fatal(err)
	}
	engine.AdvanceTo(at(90))
	engine.Recluster()
	snap2, err := c.Clusters(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version <= snap.Version {
		t.Errorf("version did not advance: %d -> %d", snap.Version, snap2.Version)
	}
	if len(snap2.Clusters) != 3 {
		t.Errorf("clusters after new key = %d, want 3", len(snap2.Clusters))
	}
}

func TestClustersDisabled(t *testing.T) {
	_, c := startServer(t) // no analytics attached
	var re *RemoteError
	if _, err := c.Clusters(0); !errors.As(err, &re) || !strings.Contains(re.Msg, "analytics disabled") {
		t.Fatalf("Clusters without analytics: err = %v, want analytics-disabled RemoteError", err)
	}
	if _, err := c.Correlation("a", "b"); !errors.As(err, &re) || !strings.Contains(re.Msg, "analytics disabled") {
		t.Fatalf("Correlation without analytics: err = %v, want analytics-disabled RemoteError", err)
	}
}

func TestClustersBadArgs(t *testing.T) {
	_, _, c := startAnalyticsServer(t)
	var re *RemoteError
	if _, err := c.roundTrip(context.Background(), "CLUSTERS", "x"); !errors.As(err, &re) {
		t.Fatalf("CLUSTERS x: err = %v, want RemoteError", err)
	}
	if _, err := c.roundTrip(context.Background(), "CLUSTERS", "-1"); !errors.As(err, &re) {
		t.Fatalf("CLUSTERS -1: err = %v, want RemoteError", err)
	}
	if _, err := c.roundTrip(context.Background(), "CORR", "a"); !errors.As(err, &re) {
		t.Fatalf("CORR a: err = %v, want RemoteError", err)
	}
}

// TestObserverSeesMSetAndPipeline checks that batch write paths feed the
// engine exactly like single sets.
func TestObserverSeesMSetAndPipeline(t *testing.T) {
	_, engine, c := startAnalyticsServer(t)
	muts := []ttkv.Mutation{
		{Key: "m1", Value: "v", Time: at(0)},
		{Key: "m2", Value: "v", Time: at(0)},
	}
	if err := c.MSet(muts); err != nil {
		t.Fatal(err)
	}
	p := c.Pipeline()
	p.Set("p1", "v", at(10))
	p.Delete("p2", at(10))
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	engine.AdvanceTo(at(60))
	engine.Recluster()
	snap, err := c.Clusters(2)
	if err != nil {
		t.Fatal(err)
	}
	var keys [][]string
	for _, cl := range snap.Clusters {
		keys = append(keys, cl.Keys)
	}
	want := [][]string{{"m1", "m2"}, {"p1", "p2"}}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("clusters = %v, want %v (MSet and Pipeline+Delete must both feed analytics)", keys, want)
	}
}
