package ttkvwire

import (
	"context"
	"fmt"
	"strconv"
	"time"
)

// SemiSyncConfig tunes the primary's semi-synchronous replication gate:
// with Acks = K > 0, a mutating command's success reply is withheld until
// K connected replicas have acknowledged applying a sequence at or past
// the write. The write is always applied locally first; semi-sync bounds
// acknowledged-write loss on failover (a promotion picks the highest
// applied replica, which necessarily holds every K>=1-acked write), it
// does not
// make writes transactional across the cluster.
type SemiSyncConfig struct {
	// Acks is the number of replica acknowledgements required before a
	// write is acknowledged to the client. 0 disables the gate
	// (asynchronous replication, the default).
	Acks int
	// Timeout bounds the wait; on expiry the client receives a RETRY
	// error (ErrRetryable) meaning "applied locally, replication
	// unconfirmed" — the caller may retry (writes are idempotent per
	// (key, timestamp)) or treat the write as at-risk. Default 2s.
	Timeout time.Duration
}

// SetSemiSync sets the server-wide semi-sync default. Individual
// connections may raise (never lower) the ack requirement with the
// SEMISYNC command. Safe at any time.
func (s *Server) SetSemiSync(cfg SemiSyncConfig) {
	s.mu.Lock()
	s.semiSync = cfg
	s.mu.Unlock()
}

// cmdSemiSync serves SEMISYNC <acks>: a per-connection ack requirement
// for subsequent writes on this connection. The effective requirement is
// max(server default, connection value), so a connection can strengthen
// but never weaken the operator's configured floor.
func (s *Server) cmdSemiSync(cs *connState, args []string) Value {
	if len(args) != 1 {
		return errValue("ERR usage: SEMISYNC acks")
	}
	k, err := strconv.Atoi(args[0])
	if err != nil || k < 0 {
		return errValue("ERR bad acks count: " + args[0])
	}
	cs.semiAcks = k
	return simple("OK")
}

// semiSyncGate enforces the effective ack requirement after a successful
// mutating command. ok=true passes the write's success reply through;
// ok=false replaces it with the returned RETRY error value.
func (s *Server) semiSyncGate(cs *connState) (retry Value, ok bool) {
	s.mu.Lock()
	cfg := s.semiSync
	rl := s.replLog
	s.mu.Unlock()
	k := cfg.Acks
	if cs.semiAcks > k {
		k = cs.semiAcks
	}
	if k <= 0 {
		return Value{}, true
	}
	if rl == nil {
		// The write already applied; failing it as retryable tells the
		// client this node cannot currently guarantee replication (e.g.
		// mid-failover) without lying about durability.
		return retryReply("semi-sync unavailable: node is not a replicating primary"), false
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	// Wait on the write's own minted sequence, threaded through the apply
	// path — not the store-wide watermark, which concurrent writers
	// inflate: gating on CurrentSeq makes one slow replica fail every
	// in-flight write on a busy primary with spurious RETRYs. Writes that
	// don't mint (RFIX) fall back to the watermark, which is conservative
	// but never premature.
	seq := cs.lastWriteSeq
	if seq == 0 {
		seq = s.store.CurrentSeq()
	}
	if s.waitForAcks(seq, k, timeout) {
		return Value{}, true
	}
	return retryReply(fmt.Sprintf(
		"semi-sync: %d replica ack(s) for seq %d not received within %v; write applied locally but unacknowledged",
		k, seq, timeout)), false
}

// waitForAcks blocks until k replica sessions have acknowledged applying
// seq or beyond, or timeout elapses.
func (s *Server) waitForAcks(seq uint64, k int, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if s.ackedReplicas(seq) >= k {
			return true
		}
		s.ackMu.Lock()
		if s.ackWake == nil {
			s.ackWake = make(chan struct{})
		}
		wake := s.ackWake
		s.ackMu.Unlock()
		// Re-count after capturing the wake channel: an ack that landed in
		// between closed the previous channel, not this one, and would
		// otherwise be missed until the next ack or the timeout.
		if s.ackedReplicas(seq) >= k {
			return true
		}
		select {
		case <-wake:
		case <-deadline.C:
			return false
		}
	}
}

// ackedReplicas counts distinct physical replicas whose acknowledged
// watermark has reached seq. Sessions are deduplicated by the replica
// run ID sent in the SYNC handshake: a replica reconnecting before its
// stale feed is reaped would otherwise count twice and satisfy K=2
// alone. Sessions without an ID (legacy handshake) count individually;
// observer sessions (analytics drainers) never count as replicas.
func (s *Server) ackedReplicas(seq uint64) int {
	n := 0
	var seen map[string]struct{}
	s.mu.Lock()
	for sess := range s.replSessions {
		if sess.replicaID == replObserverID {
			continue
		}
		if sess.ackedSeq.Load() < seq {
			continue
		}
		if sess.replicaID == "" {
			n++
			continue
		}
		if seen == nil {
			seen = make(map[string]struct{}, len(s.replSessions))
		}
		if _, dup := seen[sess.replicaID]; dup {
			continue
		}
		seen[sess.replicaID] = struct{}{}
		n++
	}
	s.mu.Unlock()
	return n
}

// noteReplicaAck wakes every waitForAcks waiter to re-count; called by
// each feed's ack reader after storing a new watermark.
func (s *Server) noteReplicaAck() {
	s.ackMu.Lock()
	if s.ackWake != nil {
		close(s.ackWake)
		s.ackWake = nil
	}
	s.ackMu.Unlock()
}

// SemiSync sets this connection's semi-sync ack requirement: subsequent
// writes on the connection wait for k replica acknowledgements (see
// SemiSyncConfig). k can only strengthen the server's configured default.
func (c *Client) SemiSync(k int) error {
	return c.SemiSyncContext(context.Background(), k)
}

// SemiSyncContext sets this connection's semi-sync ack requirement.
func (c *Client) SemiSyncContext(ctx context.Context, k int) error {
	if k < 0 {
		return fmt.Errorf("ttkvwire: semi-sync acks must be >= 0, got %d", k)
	}
	v, err := c.roundTrip(ctx, "SEMISYNC", strconv.Itoa(k))
	if err != nil {
		return err
	}
	if v.Kind != KindSimple || v.Str != "OK" {
		return fmt.Errorf("%w: unexpected SEMISYNC reply %+v", ErrProtocol, v)
	}
	return nil
}
