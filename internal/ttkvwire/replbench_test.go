package ttkvwire

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ocasta/internal/ttkv"
)

// BenchmarkReplicatedReads measures aggregate GET throughput against a
// replicated deployment: one primary plus N in-process read replicas on
// loopback, with client connections spread round-robin across every node.
// replicas=0 is the single-node baseline. Each op is one GET round trip;
// b.N ops are split across GOMAXPROCS parallel clients. The numbers
// recorded in BENCH_replication.json come from this benchmark.
//
// On a single-core host every node shares the CPU, so the per-op cost
// stays flat as replicas are added; what the numbers then demonstrate is
// that the replication machinery adds no read-path overhead (reads never
// touch the feed). The capacity win appears once nodes have their own
// cores or machines.
func BenchmarkReplicatedReads(b *testing.B) {
	const keys = 2000
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)

	for _, replicas := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			primary := ttkv.NewSharded(16)
			rl := ttkv.NewReplLog(nil)
			if err := primary.AttachReplLog(rl); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < keys; i++ {
				if err := primary.Set(fmt.Sprintf("bench/k%04d", i), fmt.Sprintf("value-%d", i), base.Add(time.Duration(i)*time.Second)); err != nil {
					b.Fatal(err)
				}
			}
			srv := NewServer(primary)
			srv.EnableReplication(rl, ReplicationConfig{HeartbeatInterval: 100 * time.Millisecond})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln) //nolint:errcheck
			defer srv.Close()

			endpoints := []string{ln.Addr().String()}
			rcs := make([]*ReplicaClient, 0, replicas)
			for r := 0; r < replicas; r++ {
				store := ttkv.NewSharded(16)
				rc, err := StartReplica(ReplicaConfig{
					Primary:    endpoints[0],
					Store:      store,
					MinBackoff: 10 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer rc.Stop()
				rcs = append(rcs, rc)
				rsrv := NewServer(store)
				rsrv.SetReadOnly(true)
				rln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				go rsrv.Serve(rln) //nolint:errcheck
				defer rsrv.Close()
				endpoints = append(endpoints, rln.Addr().String())
			}
			target := rl.DurableSeq()
			for _, rc := range rcs {
				for rc.AppliedSeq() < target {
					time.Sleep(time.Millisecond)
				}
			}

			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ep := endpoints[int(next.Add(1))%len(endpoints)]
				cl, err := Dial(ep)
				if err != nil {
					b.Error(err)
					return
				}
				defer cl.Close()
				i := 0
				for pb.Next() {
					key := fmt.Sprintf("bench/k%04d", i%keys)
					if _, err := cl.Get(key); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkReplicationCatchUp measures how fast a fresh replica ingests a
// primary's history over the wire: the SYNC snapshot stream plus
// ApplyReplicated on the replica side, reported as records/s. This is the
// window of vulnerability after adding or restarting a replica.
func BenchmarkReplicationCatchUp(b *testing.B) {
	const records = 50000
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	primary := ttkv.NewSharded(16)
	rl := ttkv.NewReplLog(nil)
	if err := primary.AttachReplLog(rl); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		k := fmt.Sprintf("bench/k%04d", i%5000)
		if err := primary.Set(k, fmt.Sprintf("value-%08d", i), base.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
	srv := NewServer(primary)
	srv.EnableReplication(rl, ReplicationConfig{HeartbeatInterval: 100 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	target := rl.DurableSeq()

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		store := ttkv.NewSharded(16)
		rc, err := StartReplica(ReplicaConfig{Primary: ln.Addr().String(), Store: store})
		if err != nil {
			b.Fatal(err)
		}
		for rc.AppliedSeq() < target {
			time.Sleep(100 * time.Microsecond)
		}
		rc.Stop()
	}
	b.StopTimer()
	b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
}
