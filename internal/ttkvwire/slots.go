package ttkvwire

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ocasta/internal/ttkv"
)

// Hash-slot cluster mode: a set of primaries divides a fixed slot space
// (ttkv.KeySlot) among themselves. Each node owns some slot ranges and
// knows (best-effort) who owns the rest; writes and single-key reads for
// a slot the node does not own are refused with a MOVED redirect naming
// the owner, exactly like the failover MOVED clients already handle.
//
// Live slot migration moves one slot between two primaries while both
// keep serving:
//
//	MIGSTART slot srcRunID      target: open/resume a migration session,
//	                            reply = source-seq watermark already applied
//	MIGDUMP slot afterSeq limit source: batch of the slot's records with
//	                            source seq in (afterSeq, CurrentSeq]
//	MIGAPPLY slot records...    target: apply a batch; source seqs must
//	                            ascend past the watermark (exactly-once
//	                            under driver restarts — the store has no
//	                            (key,timestamp) dedup, so idempotence is
//	                            by seq watermark, not by value)
//	MIGFENCE slot               source: stop admitting writes to the slot
//	                            (RETRY), then drain in-flight writes so
//	                            the final dump is complete
//	MIGTAKE slot                target: start owning the slot
//	MIGFLIP slot addr           source: record the new owner; MOVED now
//	                            points clients at the target
//	MIGABORT slot               source: lift the fence (failed migration)
//
// The MigrateSlot driver sequences these; killing it at any point and
// rerunning converges without duplicating or losing records.

// SlotRange is a contiguous run of hash slots [Lo, Hi] owned by Addr
// (Addr may be empty in contexts where the owner is implied or unknown).
type SlotRange struct {
	Lo, Hi int
	Addr   string
}

// String renders the range in the wire/flag form "lo-hi=addr".
func (r SlotRange) String() string {
	return fmt.Sprintf("%d-%d=%s", r.Lo, r.Hi, r.Addr)
}

// parseSlotRangeToken parses "lo-hi[=addr]" or "slot[=addr]" against a
// slot-space of the given size.
func parseSlotRangeToken(tok string, slots int) (SlotRange, error) {
	span, addr, _ := strings.Cut(tok, "=")
	loStr, hiStr, dashed := strings.Cut(span, "-")
	if !dashed {
		hiStr = loStr
	}
	lo, err1 := strconv.Atoi(loStr)
	hi, err2 := strconv.Atoi(hiStr)
	if err1 != nil || err2 != nil {
		return SlotRange{}, fmt.Errorf("bad slot range %q", tok)
	}
	if lo < 0 || hi >= slots || lo > hi {
		return SlotRange{}, fmt.Errorf("slot range %d-%d outside [0,%d)", lo, hi, slots)
	}
	return SlotRange{Lo: lo, Hi: hi, Addr: addr}, nil
}

// ParseSlotRanges parses a comma-separated list of "lo-hi[=addr]" tokens
// (single slots may omit "-hi"), as accepted by the daemon's -slot-range
// and -slot-peers flags.
func ParseSlotRanges(s string, slots int) ([]SlotRange, error) {
	if slots <= 0 {
		slots = ttkv.DefaultSlotCount
	}
	var out []SlotRange
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		r, err := parseSlotRangeToken(tok, slots)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// clusterState is the server's immutable slot-map snapshot. Mutators
// clone-and-swap under s.mu; dispatch does one atomic load.
type clusterState struct {
	slots  int
	owner  []string // per-slot owner address; "" = this node (see owned) or unknown
	owned  []bool   // slots this node (or its failover group) serves
	fenced []bool   // owned slots currently write-fenced for migration
}

func (cl *clusterState) clone() *clusterState {
	return &clusterState{
		slots:  cl.slots,
		owner:  append([]string(nil), cl.owner...),
		owned:  append([]bool(nil), cl.owned...),
		fenced: append([]bool(nil), cl.fenced...),
	}
}

// ranges renders the slot map as contiguous runs, labeling this node's
// own slots with self (the address writes should go to — the group
// leader). Runs with no known owner are omitted.
func (cl *clusterState) ranges(self string) []SlotRange {
	label := func(i int) string {
		if cl.owned[i] {
			return self
		}
		return cl.owner[i]
	}
	var out []SlotRange
	for i := 0; i < cl.slots; {
		l := label(i)
		j := i + 1
		for j < cl.slots && label(j) == l {
			j++
		}
		if l != "" {
			out = append(out, SlotRange{Lo: i, Hi: j - 1, Addr: l})
		}
		i = j
	}
	return out
}

// EnableCluster switches the server into hash-slot cluster mode: it
// serves the owned ranges of a slot space of the given size (<= 0 selects
// ttkv.DefaultSlotCount) and redirects traffic for peer-owned slots with
// MOVED. Peer ranges are advisory — MOVED corrections and migration flips
// update them at runtime. Call before Serve or at any time after; on a
// failover group, call it on every member (the replica's MOVED redirects
// then name real owners instead of falling back to bare READONLY).
func (s *Server) EnableCluster(slots int, owned, peers []SlotRange) error {
	if slots <= 0 {
		slots = ttkv.DefaultSlotCount
	}
	cl := &clusterState{
		slots:  slots,
		owner:  make([]string, slots),
		owned:  make([]bool, slots),
		fenced: make([]bool, slots),
	}
	for _, r := range owned {
		if r.Lo < 0 || r.Hi >= slots || r.Lo > r.Hi {
			return fmt.Errorf("ttkvwire: slot range %d-%d outside [0,%d)", r.Lo, r.Hi, slots)
		}
		for i := r.Lo; i <= r.Hi; i++ {
			cl.owned[i] = true
		}
	}
	for _, r := range peers {
		if r.Lo < 0 || r.Hi >= slots || r.Lo > r.Hi {
			return fmt.Errorf("ttkvwire: slot range %d-%d outside [0,%d)", r.Lo, r.Hi, slots)
		}
		for i := r.Lo; i <= r.Hi; i++ {
			if cl.owned[i] {
				continue // our own claim wins
			}
			cl.owner[i] = r.Addr
		}
	}
	s.mu.Lock()
	s.cluster.Store(cl)
	s.mu.Unlock()
	return nil
}

// ClusterSlots reports the slot-space size, 0 outside cluster mode.
func (s *Server) ClusterSlots() int {
	if cl := s.cluster.Load(); cl != nil {
		return cl.slots
	}
	return 0
}

// updateCluster applies f to a clone of the cluster state and swaps it
// in, all under s.mu so concurrent mutators serialize.
func (s *Server) updateCluster(f func(cl *clusterState) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cl := s.cluster.Load()
	if cl == nil {
		return errors.New("cluster mode not enabled")
	}
	c := cl.clone()
	if err := f(c); err != nil {
		return err
	}
	s.cluster.Store(c)
	return nil
}

// clusterCheck enforces slot ownership: single-key commands and batch
// writes for slots this node does not own are refused with MOVED naming
// the owner; writes to a fenced (migrating) slot get RETRY. Returns
// (reply, true) when the command must be refused. Multi-key commands
// other than MSET (KEYS, STATS, CLUSTERS, ...) stay node-local; clients
// merge across nodes. MIGAPPLY is exempt — the target applies records
// for a slot it does not own yet.
func (s *Server) clusterCheck(cl *clusterState, cmd string, args []string, mutating bool) (Value, bool) {
	check := func(key string) (Value, bool) {
		slot := ttkv.KeySlot(key, cl.slots)
		if cl.owned[slot] {
			if mutating && cl.fenced[slot] {
				return retryReply(fmt.Sprintf("slot %d migrating", slot)), true
			}
			return Value{}, false
		}
		return movedReply(cl.owner[slot], slot), true
	}
	switch cmd {
	case "SET", "DEL", "GET", "GETAT", "HIST", "MODCOUNT":
		if len(args) >= 2 {
			return check(args[1])
		}
	case "MSET":
		// Refuse the whole batch on the first foreign key, before anything
		// applies, so a cross-node MSET never half-lands here: the
		// slot-aware client re-partitions and resends.
		for i := 1; i+2 < len(args); i += 3 {
			if v, refused := check(args[i]); refused {
				return v, true
			}
		}
	}
	return Value{}, false
}

// movedReply builds the MOVED redirect for a foreign slot. With no known
// owner a bare MOVED still tells the client to rediscover the topology.
func movedReply(owner string, slot int) Value {
	if owner == "" {
		return errValue(wireCodeMoved)
	}
	return errValue(fmt.Sprintf("%s %s slot %d", wireCodeMoved, owner, slot))
}

// verKey identifies a version cluster-wide: writes are idempotent per
// (key, timestamp).
type verKey struct {
	key   string
	nanos int64
}

// migSession tracks one inbound slot migration on the target: the source
// incarnation it streams from and the highest source seq applied. The
// watermark is what makes driver restarts exactly-once: MIGSTART returns
// it, the driver resumes dumping past it, MIGAPPLY rejects non-ascending
// source seqs. Sessions survive MIGTAKE (a rerun of a completed
// migration must re-apply nothing) and are dropped when the slot flips
// away again.
//
// present holds the (key, timestamp) versions the target already had
// when the session opened, plus everything applied through it. A node
// that owned the slot before keeps the slot's full history (migration
// copies, it does not purge), so when the slot migrates back the source
// re-dumps records this target already holds; skipping them — rather
// than rejecting, which would wedge the migration, or re-applying, which
// would duplicate versions — is what makes ping-pong migrations
// converge.
type migSession struct {
	sourceRunID string
	watermark   uint64
	present     map[verKey]struct{}
}

func (s *Server) cmdMigStart(args []string) Value {
	if len(args) != 2 {
		return errValue("ERR usage: MIGSTART slot sourceRunID")
	}
	cl := s.cluster.Load()
	if cl == nil {
		return errValue("ERR cluster mode not enabled")
	}
	slot, err := strconv.Atoi(args[0])
	if err != nil || slot < 0 || slot >= cl.slots {
		return errValue("ERR bad slot")
	}
	// Index the slot's versions this node already holds, outside s.mu:
	// a former owner keeps the full history, and re-applying it on a
	// migration back would duplicate every version.
	present := make(map[verKey]struct{})
	for _, r := range s.store.SlotSnapshot(slot, cl.slots, 0, s.store.CurrentSeq()) {
		present[verKey{key: r.Key, nanos: r.Time.UnixNano()}] = struct{}{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.migSessions == nil {
		s.migSessions = make(map[int]*migSession)
	}
	sess, ok := s.migSessions[slot]
	if !ok {
		sess = &migSession{sourceRunID: args[1], present: present}
		s.migSessions[slot] = sess
	} else if sess.sourceRunID != args[1] {
		// A watermark only means "already applied" against one source seq
		// space; a different source incarnation must not resume past it.
		return errValue(fmt.Sprintf(
			"ERR slot %d migration bound to source run %q; abort it before migrating from %q",
			slot, sess.sourceRunID, args[1]))
	}
	return intValue(int64(sess.watermark))
}

func (s *Server) cmdMigDump(args []string) Value {
	if len(args) != 3 {
		return errValue("ERR usage: MIGDUMP slot afterSeq limit")
	}
	cl := s.cluster.Load()
	if cl == nil {
		return errValue("ERR cluster mode not enabled")
	}
	slot, err := strconv.Atoi(args[0])
	if err != nil || slot < 0 || slot >= cl.slots {
		return errValue("ERR bad slot")
	}
	afterSeq, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return errValue("ERR bad afterSeq")
	}
	limit, err := strconv.Atoi(args[2])
	if err != nil || limit <= 0 {
		return errValue("ERR bad limit")
	}
	recs := s.store.SlotSnapshot(slot, cl.slots, afterSeq, s.store.CurrentSeq())
	if len(recs) > limit {
		recs = recs[:limit]
	}
	els := make([]Value, 0, len(recs)*5)
	for _, r := range recs {
		deleted := "0"
		if r.Deleted {
			deleted = "1"
		}
		els = append(els,
			bulkInt(int64(r.Seq)), bulk(r.Key), bulk(r.Value),
			bulkInt(r.Time.UnixNano()), bulk(deleted))
	}
	return array(els...)
}

func (s *Server) cmdMigApply(cs *connState, args []string) Value {
	if len(args) < 6 || (len(args)-1)%5 != 0 {
		return errValue("ERR usage: MIGAPPLY slot [srcseq key value unixnanos deleted ...]")
	}
	slot, err := strconv.Atoi(args[0])
	if err != nil || slot < 0 {
		return errValue("ERR bad slot")
	}
	s.mu.Lock()
	sess := s.migSessions[slot]
	s.mu.Unlock()
	if sess == nil {
		return errValue(fmt.Sprintf("ERR no migration session for slot %d; MIGSTART first", slot))
	}
	n := (len(args) - 1) / 5
	muts := make([]ttkv.Mutation, 0, n)
	mutSeqs := make([]uint64, 0, n) // source seq per to-apply mutation
	mutKeys := make([]verKey, 0, n)
	var batchLast uint64 // source seq of the batch's last record
	s.mu.Lock()
	prev := sess.watermark
	for i := 1; i < len(args); i += 5 {
		srcSeq, err := strconv.ParseUint(args[i], 10, 64)
		if err != nil {
			s.mu.Unlock()
			return errValue("ERR bad source seq " + args[i])
		}
		if srcSeq <= prev {
			// Duplicate or reordered batch (e.g. a restarted driver that
			// skipped MIGSTART): applying would duplicate versions, since
			// the store has no value-level dedup.
			s.mu.Unlock()
			return errValue(fmt.Sprintf(
				"ERR source seq %d not past watermark %d: duplicate or reordered migration batch", srcSeq, prev))
		}
		prev, batchLast = srcSeq, srcSeq
		t, err := parseNanos(args[i+3])
		if err != nil {
			s.mu.Unlock()
			return errValue("ERR bad timestamp: " + err.Error())
		}
		vk := verKey{key: args[i+1], nanos: t.UnixNano()}
		if _, dup := sess.present[vk]; dup {
			// Already in this node's history (a former owner re-receiving
			// the slot): durable as-is, just advance over it.
			continue
		}
		muts = append(muts, ttkv.Mutation{
			Key: vk.key, Value: args[i+2], Time: t, Delete: args[i+4] == "1",
		})
		mutSeqs = append(mutSeqs, srcSeq)
		mutKeys = append(mutKeys, vk)
	}
	s.mu.Unlock()
	// Records re-mint local seqs here, so the target's AOF, observers and
	// replication stream all see the migrated versions as ordinary writes.
	applied, lastSeq, err := s.store.ApplyWithSeq(muts)
	cs.lastWriteSeq = lastSeq
	// The watermark covers every record up to the last applied mutation —
	// including skipped ones, which are durable already. A fully-applied
	// batch also covers its trailing skipped records.
	durable := uint64(0)
	if applied == len(muts) {
		durable = batchLast
	} else if applied > 0 {
		durable = mutSeqs[applied-1]
	}
	s.mu.Lock()
	if durable > sess.watermark {
		sess.watermark = durable
	}
	for i := 0; i < applied; i++ {
		sess.present[mutKeys[i]] = struct{}{}
	}
	s.mu.Unlock()
	if err != nil {
		if applied > 0 {
			// The watermark advanced only through the applied prefix, so a
			// retry resumes exactly after it.
			return errValue(fmt.Sprintf("%s %d %s", wireCodePartial, applied, err.Error()))
		}
		return errValue("ERR " + err.Error())
	}
	return intValue(int64(applied))
}

func (s *Server) cmdMigFence(args []string) Value {
	if len(args) != 1 {
		return errValue("ERR usage: MIGFENCE slot")
	}
	slot, err := strconv.Atoi(args[0])
	if err != nil || slot < 0 {
		return errValue("ERR bad slot")
	}
	if err := s.updateCluster(func(cl *clusterState) error {
		if slot >= cl.slots || !cl.owned[slot] {
			return fmt.Errorf("not the owner of slot %d", slot)
		}
		cl.fenced[slot] = true
		return nil
	}); err != nil {
		return errValue("ERR " + err.Error())
	}
	// Barrier: every mutating dispatch holds migMu for read across
	// slot-check + apply, so taking the write lock here waits out every
	// write admitted under the pre-fence state. By the time the fence
	// replies, those writes have minted their seqs and the driver's final
	// MIGDUMP (bounded by a CurrentSeq read after this reply) covers them.
	s.migMu.Lock()
	s.migMu.Unlock()
	return simple("OK")
}

func (s *Server) cmdMigAbort(args []string) Value {
	if len(args) != 1 {
		return errValue("ERR usage: MIGABORT slot")
	}
	slot, err := strconv.Atoi(args[0])
	if err != nil || slot < 0 {
		return errValue("ERR bad slot")
	}
	if err := s.updateCluster(func(cl *clusterState) error {
		if slot >= cl.slots {
			return fmt.Errorf("slot %d outside [0,%d)", slot, cl.slots)
		}
		cl.fenced[slot] = false
		return nil
	}); err != nil {
		return errValue("ERR " + err.Error())
	}
	return simple("OK")
}

func (s *Server) cmdMigTake(args []string) Value {
	if len(args) != 1 {
		return errValue("ERR usage: MIGTAKE slot")
	}
	slot, err := strconv.Atoi(args[0])
	if err != nil || slot < 0 {
		return errValue("ERR bad slot")
	}
	if err := s.updateCluster(func(cl *clusterState) error {
		if slot >= cl.slots {
			return fmt.Errorf("slot %d outside [0,%d)", slot, cl.slots)
		}
		cl.owned[slot] = true
		cl.fenced[slot] = false
		cl.owner[slot] = ""
		return nil
	}); err != nil {
		return errValue("ERR " + err.Error())
	}
	return simple("OK")
}

func (s *Server) cmdMigFlip(args []string) Value {
	if len(args) != 2 || args[1] == "" {
		return errValue("ERR usage: MIGFLIP slot newOwnerAddr")
	}
	slot, err := strconv.Atoi(args[0])
	if err != nil || slot < 0 {
		return errValue("ERR bad slot")
	}
	if err := s.updateCluster(func(cl *clusterState) error {
		if slot >= cl.slots {
			return fmt.Errorf("slot %d outside [0,%d)", slot, cl.slots)
		}
		cl.owned[slot] = false
		cl.fenced[slot] = false
		cl.owner[slot] = args[1]
		return nil
	}); err != nil {
		return errValue("ERR " + err.Error())
	}
	// The slot is no longer served here; if it ever migrates back it is a
	// fresh migration against whatever the new owner accumulates.
	s.mu.Lock()
	delete(s.migSessions, slot)
	s.mu.Unlock()
	return simple("OK")
}

// MigStart opens (or resumes) an inbound migration session for slot on
// the target node and returns the source-seq watermark already applied.
func (c *Client) MigStart(ctx context.Context, slot int, sourceRunID string) (uint64, error) {
	v, err := c.roundTrip(ctx, "MIGSTART", strconv.Itoa(slot), sourceRunID)
	if err != nil {
		return 0, err
	}
	if v.Kind != KindInt || v.Int < 0 {
		return 0, fmt.Errorf("%w: unexpected MIGSTART reply %+v", ErrProtocol, v)
	}
	return uint64(v.Int), nil
}

// MigDump fetches up to limit records of the slot with source seq in
// (afterSeq, CurrentSeq], seq-ascending.
func (c *Client) MigDump(ctx context.Context, slot int, afterSeq uint64, limit int) ([]ttkv.ReplRecord, error) {
	v, err := c.roundTrip(ctx, "MIGDUMP",
		strconv.Itoa(slot), strconv.FormatUint(afterSeq, 10), strconv.Itoa(limit))
	if err != nil {
		return nil, err
	}
	if v.Kind != KindArray || len(v.Array)%5 != 0 {
		return nil, fmt.Errorf("%w: unexpected MIGDUMP reply", ErrProtocol)
	}
	recs := make([]ttkv.ReplRecord, 0, len(v.Array)/5)
	for i := 0; i < len(v.Array); i += 5 {
		for j := 0; j < 5; j++ {
			if v.Array[i+j].Kind != KindBulk {
				return nil, fmt.Errorf("%w: unexpected MIGDUMP record element", ErrProtocol)
			}
		}
		seq, err1 := strconv.ParseUint(v.Array[i].Str, 10, 64)
		nanos, err2 := strconv.ParseInt(v.Array[i+3].Str, 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: bad MIGDUMP record numbers", ErrProtocol)
		}
		recs = append(recs, ttkv.ReplRecord{
			Seq: seq, Key: v.Array[i+1].Str, Value: v.Array[i+2].Str,
			Time: time.Unix(0, nanos).UTC(), Deleted: v.Array[i+4].Str == "1",
		})
	}
	return recs, nil
}

// MigApply applies a batch of migrated records on the target; source
// seqs must ascend past the session watermark.
func (c *Client) MigApply(ctx context.Context, slot int, recs []ttkv.ReplRecord) (int, error) {
	args := make([]string, 0, 2+len(recs)*5)
	args = append(args, "MIGAPPLY", strconv.Itoa(slot))
	for _, r := range recs {
		deleted := "0"
		if r.Deleted {
			deleted = "1"
		}
		args = append(args,
			strconv.FormatUint(r.Seq, 10), r.Key, r.Value,
			strconv.FormatInt(r.Time.UnixNano(), 10), deleted)
	}
	v, err := c.roundTrip(ctx, args...)
	if err != nil {
		return 0, err
	}
	if v.Kind != KindInt {
		return 0, fmt.Errorf("%w: unexpected MIGAPPLY reply %+v", ErrProtocol, v)
	}
	return int(v.Int), nil
}

// MigFence write-fences a slot on its current owner.
func (c *Client) MigFence(ctx context.Context, slot int) error {
	_, err := c.roundTrip(ctx, "MIGFENCE", strconv.Itoa(slot))
	return err
}

// MigAbort lifts a slot's migration fence.
func (c *Client) MigAbort(ctx context.Context, slot int) error {
	_, err := c.roundTrip(ctx, "MIGABORT", strconv.Itoa(slot))
	return err
}

// MigTake makes the node start owning a slot (target-side handoff).
func (c *Client) MigTake(ctx context.Context, slot int) error {
	_, err := c.roundTrip(ctx, "MIGTAKE", strconv.Itoa(slot))
	return err
}

// MigFlip records a slot's new owner on the node (source-side handoff).
func (c *Client) MigFlip(ctx context.Context, slot int, newOwner string) error {
	_, err := c.roundTrip(ctx, "MIGFLIP", strconv.Itoa(slot), newOwner)
	return err
}

// MigrateOptions configure MigrateSlot.
type MigrateOptions struct {
	// BatchSize bounds records per dump/apply round (default 4096).
	BatchSize int
	// DialTimeout bounds the dials to source and target (default 5s).
	DialTimeout time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// MigrateSlot moves one hash slot from the primary at source to the
// primary at target, live: it streams the slot's record history in
// batches while writes continue, fences the slot on the source once
// caught up, drains the bounded final delta, and flips ownership. The
// write outage is the fence-to-flip window — one final batch.
//
// The driver is crash-safe: killed at any point, a rerun resumes from
// the target's source-seq watermark (MIGSTART) and re-applies nothing;
// after the handoff it only re-executes the idempotent flip. A failed
// run lifts the fence again (unless the target already took ownership)
// so source writes resume.
func MigrateSlot(ctx context.Context, source, target string, slot int, opts MigrateOptions) (retErr error) {
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 4096
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dialTimeout := opts.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	dial := func(addr string) (*Client, error) {
		dctx, cancel := context.WithTimeout(ctx, dialTimeout)
		defer cancel()
		return DialContext(dctx, addr)
	}
	src, err := dial(source)
	if err != nil {
		return fmt.Errorf("ttkvwire: migrate slot %d: dial source: %w", slot, err)
	}
	defer src.Close()
	dst, err := dial(target)
	if err != nil {
		return fmt.Errorf("ttkvwire: migrate slot %d: dial target: %w", slot, err)
	}
	defer dst.Close()

	srcTopo, err := src.TopologyContext(ctx)
	if err != nil {
		return fmt.Errorf("ttkvwire: migrate slot %d: source topology: %w", slot, err)
	}
	dstTopo, err := dst.TopologyContext(ctx)
	if err != nil {
		return fmt.Errorf("ttkvwire: migrate slot %d: target topology: %w", slot, err)
	}
	targetAddr := dstTopo.Self
	if targetAddr == "" {
		targetAddr = target
	}
	if topoOwnsSlot(dstTopo, slot) {
		// Rerun after a completed handoff: only the source-side flip can
		// be missing, and re-flipping is idempotent.
		if err := src.MigFlip(ctx, slot, targetAddr); err != nil {
			return fmt.Errorf("ttkvwire: migrate slot %d: flip source: %w", slot, err)
		}
		logf("migrate slot %d: target already owns it; source flip ensured", slot)
		return nil
	}

	watermark, err := dst.MigStart(ctx, slot, srcTopo.RunID)
	if err != nil {
		return fmt.Errorf("ttkvwire: migrate slot %d: start on target: %w", slot, err)
	}
	if watermark > 0 {
		logf("migrate slot %d: resuming past source seq %d", slot, watermark)
	}
	fenced, handoff := false, false
	defer func() {
		if retErr == nil || !fenced || handoff {
			return
		}
		// Failed after fencing but before the target took over: lift the
		// fence so source writes resume. A rerun re-dumps whatever lands
		// in the meantime — the watermark keeps it exactly-once.
		abortCtx, cancel := context.WithTimeout(context.Background(), dialTimeout)
		defer cancel()
		if err := src.MigAbort(abortCtx, slot); err != nil {
			logf("migrate slot %d: fence left in place (abort failed: %v); rerun to finish", slot, err)
		}
	}()
	total := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		recs, err := src.MigDump(ctx, slot, watermark, batch)
		if err != nil {
			return fmt.Errorf("ttkvwire: migrate slot %d: dump: %w", slot, err)
		}
		if len(recs) > 0 {
			if _, err := dst.MigApply(ctx, slot, recs); err != nil {
				return fmt.Errorf("ttkvwire: migrate slot %d: apply: %w", slot, err)
			}
			watermark = recs[len(recs)-1].Seq
			total += len(recs)
		}
		if len(recs) == batch {
			continue // still catching up
		}
		if !fenced {
			// Caught up: fence the slot so the remaining delta is bounded.
			// The fence reply arrives only after in-flight writes minted
			// their seqs, so one more dump round drains everything.
			if err := src.MigFence(ctx, slot); err != nil {
				return fmt.Errorf("ttkvwire: migrate slot %d: fence: %w", slot, err)
			}
			fenced = true
			continue
		}
		break // fenced and drained
	}
	if err := dst.MigTake(ctx, slot); err != nil {
		return fmt.Errorf("ttkvwire: migrate slot %d: take on target: %w", slot, err)
	}
	handoff = true
	if err := src.MigFlip(ctx, slot, targetAddr); err != nil {
		return fmt.Errorf("ttkvwire: migrate slot %d: flip source: %w", slot, err)
	}
	logf("migrate slot %d: done, %d records moved to %s", slot, total, targetAddr)
	return nil
}

// topoOwnsSlot reports whether the topology's node itself serves the
// slot (its own ranges are labeled with its leader/self address).
func topoOwnsSlot(t Topology, slot int) bool {
	for _, r := range t.SlotRanges {
		if slot >= r.Lo && slot <= r.Hi {
			return r.Addr != "" && (r.Addr == t.Self || r.Addr == t.Leader)
		}
	}
	return false
}
