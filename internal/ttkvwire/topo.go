package ttkvwire

import (
	"context"
	"fmt"
	"strconv"
)

// Topology roles reported by the TOPO command.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
	RoleNone    = "none"
)

// Topology is a node's view of the cluster, served by the TOPO command.
// Clients use it to find the leader after a redirect and to detect
// promotions (a higher Epoch on any node supersedes everything a client
// learned at a lower epoch).
type Topology struct {
	// Role is RolePrimary, RoleReplica, or RoleNone.
	Role string
	// Epoch is the fencing term of the primary incarnation this node
	// belongs to (0 when failover is not in use). Strictly increases
	// across promotions.
	Epoch uint64
	// RunID is the primary incarnation's run ID (empty on non-primaries
	// that have never synced).
	RunID string
	// Self is this node's client-reachable address, as configured.
	Self string
	// Leader is where writes go: the node itself for a primary, its
	// last-known primary for a replica, empty when unknown.
	Leader string
	// AppliedSeq is the newest sequence applied to the node's store;
	// DurableSeq the newest durable (shippable) one. On a replica both
	// report the applied watermark.
	AppliedSeq uint64
	DurableSeq uint64
	// Peers lists the other cluster members' addresses, when the node was
	// started with a peer set (failover mode).
	Peers []string
	// SlotCount is the hash-slot space size when the node runs in cluster
	// (multi-primary) mode, 0 otherwise. See KeySlot.
	SlotCount int
	// SlotRanges is the node's slot map: its own ranges (Addr = where its
	// writes go, i.e. Leader) plus every peer range it knows an owner for.
	SlotRanges []SlotRange
}

// SetAdvertise records the address this node tells clients and peers to
// reach it at (the TOPO Self field and the basis for MOVED redirects from
// peers). Safe at any time.
func (s *Server) SetAdvertise(addr string) {
	s.mu.Lock()
	s.advertise = addr
	s.mu.Unlock()
}

// Advertise returns the address set by SetAdvertise.
func (s *Server) Advertise() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advertise
}

// SetLeaderHint records where MOVED redirects point while this node is
// read-only. An empty hint downgrades rejections to bare READONLY. Safe
// at any time; failover updates it on every role change.
func (s *Server) SetLeaderHint(addr string) {
	s.mu.Lock()
	s.leaderHint = addr
	s.mu.Unlock()
}

// LeaderHint returns the current MOVED redirect target.
func (s *Server) LeaderHint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderHint
}

// SetTopologySource installs fn as the authoritative answer to TOPO. A
// failover Node installs itself here so TOPO reflects its epoch and peer
// set; without a source the server synthesizes a best-effort topology
// from its replication role. Pass nil to revert to synthesis.
func (s *Server) SetTopologySource(fn func() Topology) {
	s.mu.Lock()
	s.topoSource = fn
	s.mu.Unlock()
}

// currentTopology resolves the node's topology: the installed source if
// any, else a synthesis from the replication role state.
func (s *Server) currentTopology() Topology {
	s.mu.Lock()
	topoFn := s.topoSource
	rl := s.replLog
	runID := s.runID
	stat := s.replicaStat
	leader := s.leaderHint
	self := s.advertise
	s.mu.Unlock()
	if topoFn != nil {
		return topoFn()
	}
	t := Topology{Role: RoleNone, Self: self, Leader: leader}
	t.AppliedSeq = s.store.CurrentSeq()
	t.DurableSeq = t.AppliedSeq
	switch {
	case stat != nil:
		st := stat.ReplicaStatus()
		t.Role = RoleReplica
		t.Epoch = st.Epoch
		t.RunID = st.RunID
		if t.Leader == "" {
			t.Leader = st.Primary
		}
	case rl != nil:
		t.Role = RolePrimary
		t.Epoch = rl.Epoch()
		t.RunID = runID
		t.DurableSeq = rl.DurableSeq()
		if t.Leader == "" {
			t.Leader = self
		}
	}
	return t
}

// cmdTopo serves TOPO: the node's cluster view.
//
//	*8  $role, $epoch, $runid, $self, $leader, $appliedSeq, $durableSeq,
//	    *N peer addresses
//
// In hash-slot cluster mode two elements are appended (clients accept
// either form):
//
//	*10 ..., $slotCount, *M "lo-hi=addr" slot ranges
func (s *Server) cmdTopo(args []string) Value {
	if len(args) != 0 {
		return errValue("ERR usage: TOPO")
	}
	t := s.currentTopology()
	peers := make([]Value, len(t.Peers))
	for i, p := range t.Peers {
		peers[i] = bulk(p)
	}
	els := []Value{
		bulk(t.Role), bulkInt(int64(t.Epoch)), bulk(t.RunID), bulk(t.Self),
		bulk(t.Leader), bulkInt(int64(t.AppliedSeq)), bulkInt(int64(t.DurableSeq)),
		array(peers...),
	}
	if cl := s.cluster.Load(); cl != nil {
		ranges := cl.ranges(t.Leader)
		rv := make([]Value, len(ranges))
		for i, r := range ranges {
			rv[i] = bulk(r.String())
		}
		els = append(els, bulkInt(int64(cl.slots)), array(rv...))
	}
	return array(els...)
}

// Topology fetches the server's cluster view.
func (c *Client) Topology() (Topology, error) {
	return c.TopologyContext(context.Background())
}

// TopologyContext fetches the server's cluster view.
func (c *Client) TopologyContext(ctx context.Context) (Topology, error) {
	v, err := c.roundTrip(ctx, "TOPO")
	if err != nil {
		return Topology{}, err
	}
	bad := func() (Topology, error) {
		return Topology{}, fmt.Errorf("%w: unexpected TOPO reply %+v", ErrProtocol, v)
	}
	if v.Kind != KindArray || (len(v.Array) != 8 && len(v.Array) != 10) {
		return bad()
	}
	for _, i := range []int{0, 2, 3, 4} {
		if v.Array[i].Kind != KindBulk {
			return bad()
		}
	}
	var nums [3]uint64
	for i, idx := range []int{1, 5, 6} {
		el := v.Array[idx]
		n, err := strconv.ParseUint(el.Str, 10, 64)
		if el.Kind != KindBulk || err != nil {
			return bad()
		}
		nums[i] = n
	}
	if v.Array[7].Kind != KindArray {
		return bad()
	}
	t := Topology{
		Role:       v.Array[0].Str,
		Epoch:      nums[0],
		RunID:      v.Array[2].Str,
		Self:       v.Array[3].Str,
		Leader:     v.Array[4].Str,
		AppliedSeq: nums[1],
		DurableSeq: nums[2],
	}
	for _, el := range v.Array[7].Array {
		if el.Kind != KindBulk {
			return bad()
		}
		t.Peers = append(t.Peers, el.Str)
	}
	if len(v.Array) == 10 {
		slots, err := strconv.Atoi(v.Array[8].Str)
		if v.Array[8].Kind != KindBulk || err != nil || slots <= 0 {
			return bad()
		}
		if v.Array[9].Kind != KindArray {
			return bad()
		}
		t.SlotCount = slots
		for _, el := range v.Array[9].Array {
			if el.Kind != KindBulk {
				return bad()
			}
			r, err := parseSlotRangeToken(el.Str, slots)
			if err != nil {
				return Topology{}, fmt.Errorf("%w: TOPO slot range %q: %v", ErrProtocol, el.Str, err)
			}
			t.SlotRanges = append(t.SlotRanges, r)
		}
	}
	return t, nil
}
