package ttkvwire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"ocasta/internal/ttkv"
)

// fnode is one in-process failover-cluster member.
type fnode struct {
	addr  string
	store *ttkv.Store
	srv   *Server
	node  *Node
	alive bool
}

// fcluster drives a cluster of failover Nodes with kill/revive at the
// same addresses, the in-process stand-in for SIGKILL + restart.
type fcluster struct {
	t     *testing.T
	lease time.Duration
	semi  SemiSyncConfig
	addrs []string
	nodes []*fnode
}

// startFCluster starts n members: node 0 as the primary, the rest as its
// replicas. Listeners are bound up front so every member knows the full
// peer set.
func startFCluster(t *testing.T, n int, lease time.Duration, semi SemiSyncConfig) *fcluster {
	t.Helper()
	c := &fcluster{t: t, lease: lease, semi: semi}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	for i := range lns {
		primaryAddr := ""
		if i > 0 {
			primaryAddr = c.addrs[0]
		}
		c.nodes = append(c.nodes, c.startMember(lns[i], i, i == 0, primaryAddr))
	}
	t.Cleanup(c.stopAll)
	return c
}

func (c *fcluster) peersOf(i int) []string {
	var peers []string
	for j, a := range c.addrs {
		if j != i {
			peers = append(peers, a)
		}
	}
	return peers
}

func (c *fcluster) startMember(ln net.Listener, i int, primary bool, primaryAddr string) *fnode {
	c.t.Helper()
	store := ttkv.NewSharded(4)
	srv := NewServer(store)
	cfg := NodeConfig{
		Store:         store,
		Server:        srv,
		Self:          c.addrs[i],
		Peers:         c.peersOf(i),
		LeaseInterval: c.lease,
		SemiSync:      c.semi,
	}
	if primary {
		rl := ttkv.NewReplLog(nil)
		if err := store.AttachReplLog(rl); err != nil {
			c.t.Fatal(err)
		}
		cfg.Primary = true
		cfg.ReplLog = rl
	} else {
		cfg.PrimaryAddr = primaryAddr
	}
	node, err := StartNode(cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	return &fnode{addr: c.addrs[i], store: store, srv: srv, node: node, alive: true}
}

// kill tears a member down abruptly: the failover loop stops and every
// connection (client and replica feed alike) is severed mid-stream.
func (c *fcluster) kill(i int) {
	fn := c.nodes[i]
	fn.alive = false
	fn.node.Stop()
	fn.srv.Close()
}

// revive restarts a killed member at its old address with an empty store
// — a rebooted process. asPrimary restarts it believing it still leads
// (the stale-primary case); otherwise it rejoins with no configured
// primary and discovers the leader by probing peers.
func (c *fcluster) revive(i int, asPrimary bool) *fnode {
	c.t.Helper()
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if ln, err = net.Listen("tcp", c.nodes[i].addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		c.t.Fatalf("rebinding %s: %v", c.nodes[i].addr, err)
	}
	fn := c.startMember(ln, i, asPrimary, "")
	c.nodes[i] = fn
	return fn
}

func (c *fcluster) stopAll() {
	for i, fn := range c.nodes {
		if fn.alive {
			c.kill(i)
		}
	}
}

// waitPrimaryIndex polls until some live member holds the primary role.
func (c *fcluster) waitPrimaryIndex(timeout time.Duration) int {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, fn := range c.nodes {
			if !fn.alive {
				continue
			}
			if role, _ := fn.node.Role(); role == RolePrimary {
				return i
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("no primary elected within %v", timeout)
	return -1
}

// livePrimaryCount counts live members claiming the primary role.
func (c *fcluster) livePrimaryCount() int {
	count := 0
	for _, fn := range c.nodes {
		if !fn.alive {
			continue
		}
		if role, _ := fn.node.Role(); role == RolePrimary {
			count++
		}
	}
	return count
}

// waitRedundant blocks until some live replica's applied sequence has
// caught up to the primary's (sampled per poll). Snapshot resyncs stream
// in ascending sequence order, so a replica at seq S holds every record
// up to S — catching up means it holds a complete second copy.
func (c *fcluster) waitRedundant(pidx int, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p := c.nodes[pidx]
		if !p.alive {
			return // leadership moved; next round re-resolves
		}
		if role, _ := p.node.Role(); role != RolePrimary {
			return
		}
		pseq := p.store.CurrentSeq()
		for i, fn := range c.nodes {
			if i != pidx && fn.alive && fn.store.CurrentSeq() >= pseq {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("redundancy not restored within %v", timeout)
}

func waitFor(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", timeout, msg)
}

// TestFailoverPromotionAndFencing is the core failover scenario: the
// primary dies, the highest-applied replica self-promotes at a bumped
// epoch within a bounded delay, the other replica re-follows the winner,
// and the revived stale primary is fenced — it demotes itself, redirects
// writes to the new leader, and resyncs to a byte-identical store.
func TestFailoverPromotionAndFencing(t *testing.T) {
	lease := 50 * time.Millisecond
	c := startFCluster(t, 3, lease, SemiSyncConfig{})

	cl, err := Dial(c.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	base := time.Now()
	for i := 0; i < 40; i++ {
		if err := cl.Set(fmt.Sprintf("/app/k%02d", i), fmt.Sprintf("v%d", i), base.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	seq := c.nodes[0].store.CurrentSeq()
	waitFor(t, 5*time.Second, "replicas caught up", func() bool {
		return c.nodes[1].store.CurrentSeq() == seq && c.nodes[2].store.CurrentSeq() == seq
	})

	c.kill(0)
	killedAt := time.Now()
	winIdx := c.waitPrimaryIndex(5 * time.Second)
	elapsed := time.Since(killedAt)
	// Detection needs 2 lease intervals of silence; promotion follows on
	// the next half-lease tick. Leave slack for CI scheduling noise.
	if elapsed > 20*lease {
		t.Fatalf("promotion took %v, want within a few lease intervals (lease %v)", elapsed, lease)
	}
	t.Logf("promotion after %v (lease %v)", elapsed, lease)

	// Both replicas were equally applied, so the smaller address must
	// have won the tiebreak.
	wantIdx := 1
	if c.addrs[2] < c.addrs[1] {
		wantIdx = 2
	}
	if winIdx != wantIdx {
		t.Fatalf("winner %s, want %s (equal appliedSeq: smaller address)", c.addrs[winIdx], c.addrs[wantIdx])
	}
	winner := c.nodes[winIdx]
	if _, epoch := winner.node.Role(); epoch != 2 {
		t.Fatalf("winner epoch = %d, want 2", epoch)
	}

	// The losing replica re-follows the winner.
	otherIdx := 3 - winIdx
	other := c.nodes[otherIdx]
	waitFor(t, 5*time.Second, "loser follows winner", func() bool {
		role, _ := other.node.Role()
		return role == RoleReplica && other.node.Leader() == winner.addr
	})

	// The new primary serves writes, and they replicate.
	wcl, err := Dial(winner.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wcl.Close()
	if err := wcl.Set("/app/after-failover", "yes", base.Add(time.Second)); err != nil {
		t.Fatalf("write to new primary: %v", err)
	}
	waitFor(t, 5*time.Second, "post-failover write replicated", func() bool {
		return other.store.CurrentSeq() == winner.store.CurrentSeq()
	})
	if got := primaryGet(t, other.store, "/app/after-failover"); got != "yes" {
		t.Fatalf("replica sees %q after failover write", got)
	}
	if n := c.livePrimaryCount(); n != 1 {
		t.Fatalf("%d live primaries, want exactly 1", n)
	}

	// Revive the dead primary still believing it leads (stale epoch 1):
	// fencing must demote it to the winner's replica.
	revived := c.revive(0, true)
	waitFor(t, 5*time.Second, "stale primary fenced and demoted", func() bool {
		role, _ := revived.node.Role()
		return role == RoleReplica && revived.node.Leader() == winner.addr
	})
	if n := c.livePrimaryCount(); n != 1 {
		t.Fatalf("%d live primaries after fencing, want exactly 1", n)
	}

	// Its writes now redirect — typed, with the current leader's address.
	rcl, err := Dial(revived.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	werr := rcl.Set("/app/fenced", "no", base.Add(2*time.Second))
	if !errors.Is(werr, ErrReadOnly) {
		t.Fatalf("write to fenced primary: %v, want errors.Is ErrReadOnly", werr)
	}
	var moved *ErrNotLeader
	if !errors.As(werr, &moved) || moved.Leader != winner.addr {
		t.Fatalf("write to fenced primary: %v, want MOVED %s", werr, winner.addr)
	}

	// And it resyncs byte-identically to the new leader's history.
	waitFor(t, 5*time.Second, "revived node resynced", func() bool {
		return revived.store.CurrentSeq() == winner.store.CurrentSeq()
	})
	if !bytes.Equal(storeDump(t, revived.store), storeDump(t, winner.store)) {
		t.Fatal("revived node's store differs from the new primary's after resync")
	}
}

// TestFailoverSemiSyncNoAckedWriteLost kills the current primary at 20
// randomized points under a concurrent writer running semi-sync K=1
// through a FailoverClient. Every write the client saw acknowledged must
// survive every failover: the acking replica holds it, and election
// prefers the highest applied sequence.
func TestFailoverSemiSyncNoAckedWriteLost(t *testing.T) {
	if testing.Short() {
		t.Skip("20 randomized kill/revive rounds")
	}
	lease := 50 * time.Millisecond
	c := startFCluster(t, 3, lease, SemiSyncConfig{Acks: 1, Timeout: 500 * time.Millisecond})

	ctx := context.Background()
	fc, err := DialCluster(ctx,
		WithPeers(c.addrs...),
		WithSemiSync(1),
		WithCallTimeout(3*time.Second),
		WithMaxRedirects(40),
		WithRetryBackoff(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	var mu sync.Mutex
	acked := make(map[string]string)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := time.Now()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("/sem/k%05d", i)
			val := fmt.Sprintf("v%d", i)
			if err := fc.Set(ctx, key, val, base.Add(time.Duration(i)*time.Millisecond)); err == nil {
				mu.Lock()
				acked[key] = val
				mu.Unlock()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		time.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond)
		victim := c.waitPrimaryIndex(10 * time.Second)
		c.kill(victim)
		successor := c.waitPrimaryIndex(10 * time.Second)
		c.revive(victim, false)
		// Semi-sync K=1 keeps every acked write on 2 nodes, so it
		// tolerates one failure at a time: after a failover the acked
		// history transiently has a single complete copy (the new
		// primary) until a follower finishes its resync. Restore that
		// redundancy before scheduling the next kill — the guarantee
		// under test is "no acked write lost across single-failure
		// kills", not survival of overlapping double failures.
		c.waitRedundant(successor, 10*time.Second)
	}
	close(stop)
	wg.Wait()

	pidx := c.waitPrimaryIndex(10 * time.Second)
	primary := c.nodes[pidx]
	waitFor(t, 10*time.Second, "cluster settles on one primary", func() bool {
		return c.livePrimaryCount() == 1
	})
	mu.Lock()
	defer mu.Unlock()
	t.Logf("%d acked writes across 20 failovers; final primary %s", len(acked), primary.addr)
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged at all")
	}
	for key, val := range acked {
		if got := primaryGet(t, primary.store, key); got != val {
			t.Fatalf("acked write %s=%s lost (primary has %q)", key, val, got)
		}
	}
}

// TestDialClusterDiscoversPrimary seeds the cluster client with only a
// replica's address: discovery must follow the replica's leader hint to
// the primary, and direct replica writes must carry the typed redirect.
func TestDialClusterDiscoversPrimary(t *testing.T) {
	lease := 50 * time.Millisecond
	c := startFCluster(t, 2, lease, SemiSyncConfig{})
	ctx := context.Background()

	fc, err := DialCluster(ctx, WithPeers(c.addrs[1]))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if fc.Leader() != c.addrs[0] {
		t.Fatalf("discovered leader %s, want %s", fc.Leader(), c.addrs[0])
	}
	if err := fc.Set(ctx, "/d/k", "v", time.Now()); err != nil {
		t.Fatal(err)
	}
	if got, err := fc.Get(ctx, "/d/k"); err != nil || got != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}

	rcl, err := Dial(c.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	werr := rcl.Set("/d/denied", "x", time.Now())
	var moved *ErrNotLeader
	if !errors.Is(werr, ErrReadOnly) || !errors.As(werr, &moved) || moved.Leader != c.addrs[0] {
		t.Fatalf("replica write: %v, want MOVED %s", werr, c.addrs[0])
	}

	// TOPO on the replica reports its role, the leader, and the epoch it
	// learned from the primary's handshake.
	waitFor(t, 5*time.Second, "replica TOPO settles", func() bool {
		topo, err := rcl.Topology()
		return err == nil && topo.Role == RoleReplica && topo.Leader == c.addrs[0] &&
			topo.Self == c.addrs[1] && topo.Epoch == 1
	})
	ptopo, err := fc.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ptopo.Role != RolePrimary || ptopo.Epoch != 1 || ptopo.Self != c.addrs[0] {
		t.Fatalf("primary TOPO = %+v", ptopo)
	}
}

// TestSemiSyncGate checks the RETRY contract: a semi-sync primary with no
// attached replica refuses to ack (typed ErrRetryable, write still
// applied locally); once a replica attaches and acks, writes succeed.
func TestSemiSyncGate(t *testing.T) {
	store := ttkv.NewSharded(4)
	rl := ttkv.NewReplLog(nil)
	if err := store.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.EnableReplication(rl, ReplicationConfig{HeartbeatInterval: 20 * time.Millisecond})
	srv.SetSemiSync(SemiSyncConfig{Acks: 1, Timeout: 100 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	addr := ln.Addr().String()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	werr := cl.Set("/s/unacked", "v", time.Now())
	if !errors.Is(werr, ErrRetryable) {
		t.Fatalf("semi-sync write with no replicas: %v, want errors.Is ErrRetryable", werr)
	}
	if got := primaryGet(t, store, "/s/unacked"); got != "v" {
		t.Fatalf("RETRY write not applied locally: %q", got)
	}

	_, rc, _ := startReplicaNode(t, addr, nil)
	defer rc.Stop()
	waitFor(t, 5*time.Second, "semi-sync write acked once a replica attached", func() bool {
		return cl.Set("/s/acked", "v", time.Now()) == nil
	})
}

// TestSemiSyncConnOverrideStrengthens: a connection-level SEMISYNC k can
// only tighten the server default, never weaken it.
func TestSemiSyncConnOverrideStrengthens(t *testing.T) {
	store := ttkv.NewSharded(4)
	rl := ttkv.NewReplLog(nil)
	if err := store.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.EnableReplication(rl, ReplicationConfig{})
	// Server default: fully asynchronous.
	srv.SetSemiSync(SemiSyncConfig{Acks: 0, Timeout: 50 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set("/o/async", "v", time.Now()); err != nil {
		t.Fatalf("async write: %v", err)
	}
	// Opting in on this connection makes the same write wait for an ack
	// that no replica will ever send.
	if err := cl.SemiSync(1); err != nil {
		t.Fatal(err)
	}
	werr := cl.Set("/o/sync", "v", time.Now())
	if !errors.Is(werr, ErrRetryable) {
		t.Fatalf("overridden write: %v, want errors.Is ErrRetryable", werr)
	}
}
