package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWindowerEmpty(t *testing.T) {
	w := NewWindower(time.Second, GroupAnchored)
	if got := w.Groups(nil); got != nil {
		t.Errorf("Groups(nil) = %v, want nil", got)
	}
}

func TestWindowerDefaults(t *testing.T) {
	w := NewWindower(-5*time.Second, GroupMode(0))
	if w.Window() != 0 {
		t.Errorf("negative window should clamp to 0, got %v", w.Window())
	}
	if w.Mode() != GroupAnchored {
		t.Errorf("invalid mode should default to anchored, got %v", w.Mode())
	}
}

func TestGroupModeString(t *testing.T) {
	if GroupAnchored.String() != "anchored" || GroupChained.String() != "chained" {
		t.Error("GroupMode.String mismatch")
	}
	if GroupMode(9).String() != "unknown" {
		t.Error("unknown GroupMode should stringify as unknown")
	}
}

func TestAnchoredGrouping(t *testing.T) {
	// a,b at t=0; c at t=0.9s (within 1s of anchor); d at t=1.5s (outside).
	writes := []Event{
		ev(0, OpWrite, "a"),
		ev(0, OpWrite, "b"),
		{Time: t0.Add(900 * time.Millisecond), Op: OpWrite, Key: "c"},
		{Time: t0.Add(1500 * time.Millisecond), Op: OpWrite, Key: "d"},
	}
	groups := NewWindower(time.Second, GroupAnchored).Groups(writes)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2: %+v", len(groups), groups)
	}
	if len(groups[0].Keys) != 3 || !groups[0].Contains("a") || !groups[0].Contains("b") || !groups[0].Contains("c") {
		t.Errorf("group 0 keys = %v, want [a b c]", groups[0].Keys)
	}
	if len(groups[1].Keys) != 1 || groups[1].Keys[0] != "d" {
		t.Errorf("group 1 keys = %v, want [d]", groups[1].Keys)
	}
}

func TestChainedGrouping(t *testing.T) {
	// With chaining, 0 -> 0.9 -> 1.5 (gap 0.6s) all connect; anchored splits.
	writes := []Event{
		ev(0, OpWrite, "a"),
		{Time: t0.Add(900 * time.Millisecond), Op: OpWrite, Key: "b"},
		{Time: t0.Add(1500 * time.Millisecond), Op: OpWrite, Key: "c"},
		{Time: t0.Add(5 * time.Second), Op: OpWrite, Key: "d"},
	}
	groups := NewWindower(time.Second, GroupChained).Groups(writes)
	if len(groups) != 2 {
		t.Fatalf("chained: got %d groups, want 2: %+v", len(groups), groups)
	}
	if len(groups[0].Keys) != 3 {
		t.Errorf("chained group 0 keys = %v, want 3 keys", groups[0].Keys)
	}
}

func TestZeroWindowGroupsByIdenticalTimestamp(t *testing.T) {
	writes := []Event{
		ev(0, OpWrite, "a"),
		ev(0, OpWrite, "b"),
		ev(1, OpWrite, "c"),
	}
	groups := NewWindower(0, GroupAnchored).Groups(writes)
	if len(groups) != 2 {
		t.Fatalf("zero window: got %d groups, want 2", len(groups))
	}
	if len(groups[0].Keys) != 2 {
		t.Errorf("zero window group 0 = %v, want [a b]", groups[0].Keys)
	}
}

func TestDuplicateKeyInGroupDedup(t *testing.T) {
	writes := []Event{ev(0, OpWrite, "a"), ev(0, OpWrite, "a"), ev(0, OpWrite, "b")}
	groups := NewWindower(time.Second, GroupAnchored).Groups(writes)
	if len(groups) != 1 || len(groups[0].Keys) != 2 {
		t.Fatalf("got %+v, want one group with keys [a b]", groups)
	}
}

func TestGroupContains(t *testing.T) {
	g := Group{Keys: []string{"alpha", "beta", "gamma"}}
	if !g.Contains("beta") || g.Contains("delta") {
		t.Error("Contains gave the wrong answer")
	}
}

func TestGroupTraceSeparatesApps(t *testing.T) {
	// Two apps writing in the same second must not be co-modified.
	tr := &Trace{Events: []Event{
		{Time: t0, Op: OpWrite, App: "word", Key: "w1"},
		{Time: t0, Op: OpWrite, App: "acrobat", Key: "a1"},
	}}
	groups := NewWindower(time.Second, GroupAnchored).GroupTrace(tr)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (one per app)", len(groups))
	}
	for _, g := range groups {
		if len(g.Keys) != 1 {
			t.Errorf("cross-app keys grouped together: %v", g.Keys)
		}
	}
}

func TestUnsortedInputHandled(t *testing.T) {
	writes := []Event{ev(10, OpWrite, "late"), ev(0, OpWrite, "early")}
	groups := NewWindower(time.Second, GroupAnchored).Groups(writes)
	if len(groups) != 2 || groups[0].Keys[0] != "early" {
		t.Fatalf("unsorted input mishandled: %+v", groups)
	}
}

// Property: every write lands in exactly one group, and each group's span
// never exceeds the window in anchored mode.
func TestGroupsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(offsets []uint16, keyIDs []uint8) bool {
		n := len(offsets)
		if len(keyIDs) < n {
			n = len(keyIDs)
		}
		if n == 0 {
			return true
		}
		writes := make([]Event, 0, n)
		total := 0
		for i := 0; i < n; i++ {
			writes = append(writes, Event{
				Time: t0.Add(time.Duration(offsets[i]%600) * time.Second),
				Op:   OpWrite,
				Key:  string(rune('a' + keyIDs[i]%26)),
			})
			total++
		}
		window := time.Duration(1+rng.Intn(30)) * time.Second
		groups := NewWindower(window, GroupAnchored).Groups(writes)
		seen := 0
		for _, g := range groups {
			if g.End.Sub(g.Start) > window {
				return false
			}
			if len(g.Keys) == 0 {
				return false
			}
			seen += len(g.Keys) // lower bound: dedup means seen <= total
		}
		return seen > 0 && seen <= total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: groups are chronologically ordered and non-overlapping in
// anchored mode (each group starts after the previous group's start).
func TestGroupsOrderedProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		writes := make([]Event, len(offsets))
		for i, off := range offsets {
			writes[i] = Event{Time: t0.Add(time.Duration(off) * time.Second), Op: OpWrite, Key: "k"}
		}
		groups := NewWindower(5*time.Second, GroupAnchored).Groups(writes)
		for i := 1; i < len(groups); i++ {
			if !groups[i].Start.After(groups[i-1].Start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
