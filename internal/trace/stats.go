package trace

import (
	"sort"
	"time"
)

// Stats summarizes a trace the way Table I of the paper reports deployments:
// days of collection, read and write volume, and the number of distinct keys.
type Stats struct {
	Name    string
	Days    int
	Reads   int
	Writes  int // includes deletions, which the TTKV records as writes of a tombstone
	Deletes int
	Keys    int
	Apps    int
	First   time.Time
	Last    time.Time
}

// Summarize computes trace statistics. Days is the span rounded up to whole
// days (a 25-hour trace counts as 2 days), matching how deployment lengths
// are reported in the paper.
func Summarize(tr *Trace) Stats {
	st := Stats{Name: tr.Name}
	keys := make(map[string]struct{})
	apps := make(map[string]struct{})
	for _, ev := range tr.Events {
		switch ev.Op {
		case OpRead:
			st.Reads++
		case OpWrite:
			st.Writes++
		case OpDelete:
			st.Writes++
			st.Deletes++
		}
		keys[ev.Key] = struct{}{}
		apps[ev.App] = struct{}{}
	}
	st.Keys = len(keys)
	st.Apps = len(apps)
	if first, last, ok := tr.Span(); ok {
		st.First, st.Last = first, last
		span := last.Sub(first)
		st.Days = int(span / (24 * time.Hour))
		if span%(24*time.Hour) != 0 || st.Days == 0 {
			st.Days++
		}
	}
	return st
}

// KeyWriteCounts returns, per key, how many write/delete events the trace
// contains. Repair uses this to rank clusters: configuration-like keys are
// written rarely, so low-count clusters are searched first.
func KeyWriteCounts(tr *Trace) map[string]int {
	counts := make(map[string]int)
	for _, ev := range tr.Events {
		if ev.Op == OpWrite || ev.Op == OpDelete {
			counts[ev.Key]++
		}
	}
	return counts
}

// MergeByUser combines per-machine traces into per-user traces, mirroring
// the paper's handling of the shared Linux lab machines: all events by one
// user are linked across machines into a single chronological trace named
// after the user.
func MergeByUser(traces []*Trace) []*Trace {
	byUser := make(map[string]*Trace)
	var order []string
	for _, tr := range traces {
		for _, ev := range tr.Events {
			user := ev.User
			if user == "" {
				user = tr.Name
			}
			merged, ok := byUser[user]
			if !ok {
				merged = &Trace{Name: user}
				byUser[user] = merged
				order = append(order, user)
			}
			merged.Events = append(merged.Events, ev)
		}
	}
	sort.Strings(order)
	out := make([]*Trace, 0, len(byUser))
	for _, user := range order {
		tr := byUser[user]
		tr.SortByTime()
		out = append(out, tr)
	}
	return out
}
