package trace

import (
	"container/heap"
	"math"
	"sort"
	"time"
)

// DefaultHorizon is the default reorder horizon of a StreamWindower: how
// far out of chronological order (per application) pushed events may
// arrive and still be grouped exactly as a batch sort would group them.
const DefaultHorizon = 2 * time.Second

// StreamWindower is the push-based counterpart of Windower: it accepts
// events one at a time and emits co-modification groups incrementally, so
// a live write stream can feed the clustering engine without ever
// materialising (or re-sorting) the full trace.
//
// Events from different applications are windowed independently, exactly
// like Windower.GroupTrace. Within one application, events may arrive up
// to the reorder horizon out of chronological order: each application
// keeps a small buffer ordered by (time, arrival), and an event is only
// windowed once the application's high-water mark has moved past it by
// the horizon. As long as per-app disorder stays within the horizon, the
// emitted groups are exactly the groups the batch pipeline computes from
// the same event set (see TestStreamBatchEquivalence).
//
// A group is emitted as soon as an event proves its window closed (or on
// Flush/AdvanceTo). Emission order therefore follows group *close* time;
// collect and SortGroups to compare against Windower.GroupTrace output.
//
// The Group passed to the emit callback borrows internal buffers: it is
// valid only for the duration of the call, and its Keys slice is reused
// for the next group. Callers that retain groups must copy.
//
// StreamWindower is not safe for concurrent use; callers serialise Push
// (core.Engine wraps it with a mutex).
type StreamWindower struct {
	window  time.Duration
	mode    GroupMode
	horizon time.Duration
	emit    func(*Group)
	apps    map[string]*appStream
	groups  int
	// Optional future-skew guard (SetFutureLimit): bounds how far beyond
	// clock() an event may advance a watermark.
	maxSkew time.Duration
	clock   func() time.Time
}

// SetFutureLimit guards the per-app watermarks against far-future event
// timestamps: an event stamped beyond clock()+maxSkew does not advance
// its watermark at all. Without the guard (the default, clock == nil),
// one corrupt or hostile timestamp — wire timestamps are client-supplied
// — ratchets the watermark forever: every later normal event counts as
// "late" (forfeiting the reorder guarantee) and watermark advances close
// every open group instantly. With the guard, the poisoned event is
// quarantined in the reorder buffer until the clock actually reaches it
// (or Flush), the watermark keeps following legitimate traffic, and the
// rest of the stream windows normally; maxSkew is the writer clock skew
// to tolerate (seconds, not hours). Only daemons whose writers stamp
// events with real time should enable this; replays of historical traces
// must leave it off.
func (s *StreamWindower) SetFutureLimit(maxSkew time.Duration, clock func() time.Time) {
	s.maxSkew = maxSkew
	s.clock = clock
}

// appStream is one application's windowing state: the reorder buffer plus
// the open group.
type appStream struct {
	app  string
	pend pendHeap
	seq  uint64 // arrival order, tie-break for equal timestamps
	// maxSeen is the application's event-time high-water mark (UnixNano);
	// events at or before maxSeen-horizon are safe to window.
	maxSeen int64

	open         bool
	anchor, prev time.Time
	keys         []string // raw appends; sorted+deduped at flush
	out          Group    // reusable emit buffer
}

// pendEvent is one buffered event awaiting its reorder horizon.
type pendEvent struct {
	nanos int64
	seq   uint64
	key   string
	t     time.Time
}

// pendHeap is a min-heap by (time, arrival order).
type pendHeap []pendEvent

func (h pendHeap) Len() int { return len(h) }
func (h pendHeap) Less(i, j int) bool {
	if h[i].nanos != h[j].nanos {
		return h[i].nanos < h[j].nanos
	}
	return h[i].seq < h[j].seq
}
func (h pendHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendHeap) Push(x any)   { *h = append(*h, x.(pendEvent)) }
func (h *pendHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = pendEvent{}
	*h = old[:n-1]
	return ev
}

// NewStreamWindower returns a streaming windower. Window and mode behave
// exactly as in NewWindower; horizon < 0 selects DefaultHorizon (0 is a
// valid choice: events must then arrive per-app chronologically). Emit is
// called once per closed group and must be non-nil; the *Group argument
// is only valid during the call.
func NewStreamWindower(window time.Duration, mode GroupMode, horizon time.Duration, emit func(*Group)) *StreamWindower {
	if window < 0 {
		window = 0
	}
	if mode != GroupChained {
		mode = GroupAnchored
	}
	if horizon < 0 {
		horizon = DefaultHorizon
	}
	return &StreamWindower{
		window:  window,
		mode:    mode,
		horizon: horizon,
		emit:    emit,
		apps:    make(map[string]*appStream),
	}
}

// Window returns the configured window size.
func (s *StreamWindower) Window() time.Duration { return s.window }

// Mode returns the configured grouping mode.
func (s *StreamWindower) Mode() GroupMode { return s.mode }

// Horizon returns the configured reorder horizon.
func (s *StreamWindower) Horizon() time.Duration { return s.horizon }

// Groups returns how many groups have been emitted so far.
func (s *StreamWindower) Groups() int { return s.groups }

// Pending returns how many events sit in reorder buffers, not yet
// windowed (open groups not included).
func (s *StreamWindower) Pending() int {
	n := 0
	for _, as := range s.apps {
		n += len(as.pend)
	}
	return n
}

// Push feeds one event into the stream. Non-modification events (reads)
// are ignored, mirroring the batch pipeline's Writes() filter. Push may
// synchronously emit zero or more groups whose windows the event proves
// closed.
func (s *StreamWindower) Push(ev Event) {
	if ev.Op != OpWrite && ev.Op != OpDelete {
		return
	}
	as, ok := s.apps[ev.App]
	if !ok {
		as = &appStream{app: ev.App}
		s.apps[ev.App] = as
	}
	nanos := ev.Time.UnixNano()
	pe := pendEvent{nanos: nanos, seq: as.seq, key: ev.Key, t: ev.Time}
	as.seq++
	if nanos > as.maxSeen {
		// A timestamp beyond the future limit advances the watermark not
		// at all (rather than partially): the event is quarantined in the
		// reorder buffer until the clock genuinely reaches it, and the
		// watermark keeps following legitimate traffic.
		if s.clock == nil || nanos <= s.clock().Add(s.maxSkew).UnixNano() {
			as.maxSeen = nanos
		}
	}
	// An event already past the horizon would pop immediately; skip the
	// heap round-trip. This is also the path late events (beyond the
	// horizon) take: they are windowed in arrival order, the best the
	// stream can do once the sort guarantee is forfeited.
	if len(as.pend) == 0 && nanos <= as.maxSeen-int64(s.horizon) {
		s.process(as, pe.t, pe.key)
		return
	}
	heap.Push(&as.pend, pe)
	s.drain(as, as.maxSeen-int64(s.horizon))
}

// drain windows every buffered event at or before due.
func (s *StreamWindower) drain(as *appStream, due int64) {
	for len(as.pend) > 0 && as.pend[0].nanos <= due {
		pe := heap.Pop(&as.pend).(pendEvent)
		s.process(as, pe.t, pe.key)
	}
}

// process applies one in-order event to the application's open group,
// replicating Windower.Groups' boundary logic exactly.
func (s *StreamWindower) process(as *appStream, t time.Time, key string) {
	if !as.open {
		as.open = true
		as.anchor, as.prev = t, t
		as.keys = append(as.keys[:0], key)
		return
	}
	var within bool
	switch s.mode {
	case GroupChained:
		within = t.Sub(as.prev) <= s.window
	default:
		within = t.Sub(as.anchor) <= s.window
	}
	if !within {
		s.close(as)
		as.anchor = t
		as.keys = as.keys[:0]
	}
	as.keys = append(as.keys, key)
	as.prev = t
}

// close emits the application's open group (sorted, deduped) and marks it
// closed. The emitted Group borrows as.out and as.keys.
func (s *StreamWindower) close(as *appStream) {
	if !as.open {
		return
	}
	sort.Strings(as.keys)
	// In-place dedup: a key written several times in one window is one
	// logical modification, as in the batch windower's set semantics.
	w := 1
	for i := 1; i < len(as.keys); i++ {
		if as.keys[i] != as.keys[i-1] {
			as.keys[w] = as.keys[i]
			w++
		}
	}
	as.out = Group{Start: as.anchor, End: as.prev, App: as.app, Keys: as.keys[:w]}
	s.groups++
	s.emit(&as.out)
}

// AdvanceTo declares that no event with time earlier than t-horizon will
// arrive for any application (a watermark, typically driven by a wall
// clock when writers stamp events with real time). It windows every
// buffered event the watermark has passed and emits open groups whose
// window can no longer be extended by any future event. Events pushed
// later with times beyond the declared watermark's horizon are windowed
// in arrival order (the sort guarantee is forfeited, exactly as for any
// late event).
func (s *StreamWindower) AdvanceTo(t time.Time) {
	nanos := t.UnixNano()
	for _, as := range s.apps {
		if nanos > as.maxSeen {
			as.maxSeen = nanos
		}
		due := as.maxSeen - int64(s.horizon)
		s.drain(as, due)
		if !as.open {
			continue
		}
		// A future event carries time >= due (the watermark rules out
		// strictly-earlier arrivals only). The open group can still grow
		// iff such a time can fall within the window, i.e. while
		// due <= boundary: the boundary event itself is within (the batch
		// windower's comparison is <=), so closing requires strictly
		// passing it.
		var closed bool
		switch s.mode {
		case GroupChained:
			closed = due > as.prev.UnixNano()+int64(s.window)
		default:
			closed = due > as.anchor.UnixNano()+int64(s.window)
		}
		if closed {
			s.close(as)
			as.open = false
			as.keys = as.keys[:0]
		}
	}
}

// Flush windows every buffered event and emits every open group,
// finishing the stream. After Flush the windower is reusable: subsequent
// pushes open fresh groups (per-app watermarks persist, so events older
// than a pre-flush watermark minus the horizon are late).
func (s *StreamWindower) Flush() {
	for _, as := range s.apps {
		// MaxInt64, not an arbitrary big number: quarantined far-future
		// events can carry any nanos value and must drain here.
		s.drain(as, math.MaxInt64)
		if as.open {
			s.close(as)
			as.open = false
			as.keys = as.keys[:0]
		}
	}
}
