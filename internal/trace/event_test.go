package trace

import (
	"testing"
	"time"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

func ev(sec int, op Op, key string) Event {
	return Event{
		Time: t0.Add(time.Duration(sec) * time.Second), Op: op,
		Store: StoreGConf, App: "evolution", User: "u1", Key: key, Value: "v",
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpRead, "read"},
		{OpWrite, "write"},
		{OpDelete, "delete"},
		{Op(99), "op(99)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestOpValid(t *testing.T) {
	for _, op := range []Op{OpRead, OpWrite, OpDelete} {
		if !op.Valid() {
			t.Errorf("Op %v should be valid", op)
		}
	}
	if Op(0).Valid() || Op(17).Valid() {
		t.Error("out-of-range ops should be invalid")
	}
}

func TestStoreKindString(t *testing.T) {
	tests := []struct {
		s    StoreKind
		want string
	}{
		{StoreRegistry, "registry"},
		{StoreGConf, "gconf"},
		{StoreFile, "file"},
		{StoreKind(42), "store(42)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("StoreKind(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestStoreKindValid(t *testing.T) {
	for _, s := range []StoreKind{StoreRegistry, StoreGConf, StoreFile} {
		if !s.Valid() {
			t.Errorf("StoreKind %v should be valid", s)
		}
	}
	if StoreKind(0).Valid() {
		t.Error("zero StoreKind should be invalid")
	}
}

func TestTraceClone(t *testing.T) {
	tr := &Trace{Name: "m1", Events: []Event{ev(0, OpWrite, "a"), ev(1, OpRead, "b")}}
	cl := tr.Clone()
	cl.Events[0].Key = "mutated"
	cl.Name = "m2"
	if tr.Events[0].Key != "a" || tr.Name != "m1" {
		t.Error("Clone must not share state with the original")
	}
	if len(cl.Events) != 2 {
		t.Fatalf("clone has %d events, want 2", len(cl.Events))
	}
}

func TestSortByTimeStable(t *testing.T) {
	// Two events share a timestamp; stable sort must preserve their order.
	a, b := ev(5, OpWrite, "a"), ev(5, OpWrite, "b")
	c := ev(1, OpWrite, "c")
	tr := &Trace{Events: []Event{a, b, c}}
	tr.SortByTime()
	got := []string{tr.Events[0].Key, tr.Events[1].Key, tr.Events[2].Key}
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after sort keys = %v, want %v", got, want)
		}
	}
}

func TestFilterAndByApp(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: t0, Op: OpWrite, App: "word", Key: "k1"},
		{Time: t0, Op: OpWrite, App: "acrobat", Key: "k2"},
		{Time: t0, Op: OpRead, App: "word", Key: "k3"},
	}}
	word := tr.ByApp("word")
	if len(word.Events) != 2 {
		t.Fatalf("ByApp(word) returned %d events, want 2", len(word.Events))
	}
	writes := tr.Filter(func(e Event) bool { return e.Op == OpWrite })
	if len(writes.Events) != 2 {
		t.Fatalf("Filter(writes) returned %d events, want 2", len(writes.Events))
	}
	// The original must be untouched.
	if len(tr.Events) != 3 {
		t.Fatal("Filter must not mutate the receiver")
	}
}

func TestSpan(t *testing.T) {
	empty := &Trace{}
	if _, _, ok := empty.Span(); ok {
		t.Error("empty trace must report ok=false")
	}
	tr := &Trace{Events: []Event{ev(10, OpWrite, "a"), ev(3, OpRead, "b"), ev(7, OpWrite, "c")}}
	first, last, ok := tr.Span()
	if !ok {
		t.Fatal("Span() not ok on non-empty trace")
	}
	if !first.Equal(t0.Add(3*time.Second)) || !last.Equal(t0.Add(10*time.Second)) {
		t.Errorf("Span() = %v..%v, want %v..%v", first, last, t0.Add(3*time.Second), t0.Add(10*time.Second))
	}
}

func TestWritesFiltersAndSorts(t *testing.T) {
	tr := &Trace{Events: []Event{
		ev(9, OpWrite, "late"),
		ev(1, OpRead, "read"),
		ev(2, OpDelete, "del"),
		ev(0, OpWrite, "early"),
	}}
	ws := tr.Writes()
	if len(ws) != 3 {
		t.Fatalf("Writes() returned %d events, want 3 (reads excluded)", len(ws))
	}
	if ws[0].Key != "early" || ws[1].Key != "del" || ws[2].Key != "late" {
		t.Errorf("Writes() order = %s,%s,%s", ws[0].Key, ws[1].Key, ws[2].Key)
	}
}
