package trace

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// cloneGroup deep-copies an emitted group (the callback argument borrows
// the windower's buffers).
func cloneGroup(g *Group) Group {
	out := *g
	out.Keys = append([]string(nil), g.Keys...)
	return out
}

// collectStream pushes every event of tr through a fresh StreamWindower
// and returns all emitted groups (including a final Flush), sorted the
// way GroupTrace sorts.
func collectStream(tr *Trace, window time.Duration, mode GroupMode, horizon time.Duration) []Group {
	var got []Group
	sw := NewStreamWindower(window, mode, horizon, func(g *Group) {
		got = append(got, cloneGroup(g))
	})
	for _, ev := range tr.Events {
		sw.Push(ev)
	}
	sw.Flush()
	SortGroups(got)
	return got
}

// randomTrace builds a multi-app trace with second-granularity timestamps
// dense enough to produce plenty of window collisions and ties.
func randomTrace(rng *rand.Rand, events int) *Trace {
	apps := []string{"alpha", "beta", "gamma"}
	tr := &Trace{Name: "stream-test"}
	for i := 0; i < events; i++ {
		op := OpWrite
		switch rng.Intn(10) {
		case 0:
			op = OpDelete
		case 1:
			op = OpRead // must be ignored by both pipelines
		}
		tr.Events = append(tr.Events, Event{
			Time:  t0.Add(time.Duration(rng.Intn(events/2+1)) * time.Second),
			Op:    op,
			Store: StoreRegistry,
			App:   apps[rng.Intn(len(apps))],
			Key:   fmt.Sprintf("k%02d", rng.Intn(12)),
			Value: "v",
		})
	}
	tr.SortByTime()
	return tr
}

// shuffleWithin perturbs event order so every event moves at most horizon
// away from its sorted position in time, exercising the reorder buffer.
func shuffleWithin(rng *rand.Rand, tr *Trace, horizon time.Duration) *Trace {
	out := tr.Clone()
	evs := out.Events
	// Adjacent swaps keep per-app time displacement bounded by the
	// largest timestamp difference across one swap; restrict to pairs
	// whose times differ by less than the horizon.
	for pass := 0; pass < 4; pass++ {
		for i := len(evs) - 1; i > 0; i-- {
			j := i - 1
			if rng.Intn(2) == 0 {
				continue
			}
			d := evs[i].Time.Sub(evs[j].Time)
			if d < 0 {
				d = -d
			}
			if d < horizon {
				evs[i], evs[j] = evs[j], evs[i]
			}
		}
	}
	return out
}

func TestStreamWindowerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tr := randomTrace(rng, 60+rng.Intn(120))
		for _, mode := range []GroupMode{GroupAnchored, GroupChained} {
			for _, window := range []time.Duration{0, time.Second, 3 * time.Second} {
				w := NewWindower(window, mode)
				want := w.GroupTrace(tr)
				got := collectStream(tr, window, mode, 0)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d mode=%v window=%v:\n got %+v\nwant %+v",
						trial, mode, window, got, want)
				}
			}
		}
	}
}

func TestStreamWindowerReorderWithinHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const horizon = 4 * time.Second
	for trial := 0; trial < 200; trial++ {
		tr := randomTrace(rng, 80+rng.Intn(120))
		shuffled := shuffleWithin(rng, tr, horizon)
		for _, mode := range []GroupMode{GroupAnchored, GroupChained} {
			want := NewWindower(time.Second, mode).GroupTrace(tr)
			got := collectStream(shuffled, time.Second, mode, horizon)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d mode=%v:\n got %+v\nwant %+v", trial, mode, got, want)
			}
		}
	}
}

func TestStreamWindowerAdvanceTo(t *testing.T) {
	var got []Group
	sw := NewStreamWindower(time.Second, GroupAnchored, 0, func(g *Group) {
		got = append(got, cloneGroup(g))
	})
	sw.Push(Event{Time: t0, Op: OpWrite, App: "a", Key: "x"})
	sw.Push(Event{Time: t0, Op: OpWrite, App: "a", Key: "y"})
	if len(got) != 0 {
		t.Fatalf("group emitted before close: %+v", got)
	}
	// Advancing to just inside the window must not close the group...
	sw.AdvanceTo(t0.Add(time.Second))
	if len(got) != 0 {
		t.Fatalf("AdvanceTo inside window closed the group: %+v", got)
	}
	// ...but past it must.
	sw.AdvanceTo(t0.Add(1100 * time.Millisecond))
	if len(got) != 1 || !reflect.DeepEqual(got[0].Keys, []string{"x", "y"}) {
		t.Fatalf("AdvanceTo past window: got %+v, want one {x,y} group", got)
	}
	// The windower stays usable: a later event opens a fresh group.
	sw.Push(Event{Time: t0.Add(5 * time.Second), Op: OpWrite, App: "a", Key: "z"})
	sw.Flush()
	if len(got) != 2 || !reflect.DeepEqual(got[1].Keys, []string{"z"}) {
		t.Fatalf("post-advance push: got %+v", got)
	}
}

func TestStreamWindowerIgnoresReads(t *testing.T) {
	calls := 0
	sw := NewStreamWindower(time.Second, GroupAnchored, 0, func(g *Group) { calls++ })
	sw.Push(Event{Time: t0, Op: OpRead, App: "a", Key: "x"})
	sw.Flush()
	if calls != 0 || sw.Groups() != 0 {
		t.Fatalf("read events must not form groups (calls=%d groups=%d)", calls, sw.Groups())
	}
}

// Regression for the GroupTrace determinism bug: equal-Start groups from
// different apps used to order by map iteration; the merge now tie-breaks
// on (Start, App, first key).
func TestGroupTraceEqualStartDeterministic(t *testing.T) {
	tr := &Trace{}
	// Many apps all flushing at the same two seconds.
	for i := 0; i < 12; i++ {
		app := fmt.Sprintf("app%02d", i)
		tr.Events = append(tr.Events,
			Event{Time: t0, Op: OpWrite, App: app, Key: fmt.Sprintf("%s/a", app)},
			Event{Time: t0, Op: OpWrite, App: app, Key: fmt.Sprintf("%s/b", app)},
			Event{Time: t0.Add(10 * time.Second), Op: OpWrite, App: app, Key: fmt.Sprintf("%s/c", app)},
		)
	}
	w := NewWindower(time.Second, GroupAnchored)
	want := w.GroupTrace(tr)
	for i := 0; i < 20; i++ {
		got := w.GroupTrace(tr)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("GroupTrace order unstable on run %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	for i := 1; i < len(want); i++ {
		a, b := &want[i-1], &want[i]
		if a.Start.After(b.Start) {
			t.Fatalf("groups out of chronological order at %d", i)
		}
		if a.Start.Equal(b.Start) && a.App > b.App {
			t.Fatalf("equal-Start groups not ordered by app at %d: %q > %q", i, a.App, b.App)
		}
	}
}

// Regression: wire timestamps are client-supplied, and the per-app
// watermark only ratchets upward — without the future-skew guard, one
// far-future timestamp would permanently defeat the reorder buffer and
// make every watermark advance close open groups instantly.
func TestStreamWindowerFutureSkewQuarantine(t *testing.T) {
	wall := t0.Add(10 * time.Second) // fixed "now"
	var got []Group
	sw := NewStreamWindower(time.Second, GroupAnchored, 4*time.Second, func(g *Group) {
		got = append(got, cloneGroup(g))
	})
	sw.SetFutureLimit(2*time.Second, func() time.Time { return wall })

	// Poison: a write stamped a year ahead. It must not advance the
	// watermark (it sits quarantined in the reorder buffer).
	sw.Push(Event{Time: t0.Add(365 * 24 * time.Hour), Op: OpWrite, App: "a", Key: "poison"})
	// Normal traffic, slightly out of order within the horizon.
	sw.Push(Event{Time: t0.Add(2 * time.Second), Op: OpWrite, App: "a", Key: "y"})
	sw.Push(Event{Time: t0, Op: OpWrite, App: "a", Key: "x"})
	// A later legitimate event (within clock+skew) drives the watermark
	// forward and drains x and y in time order.
	sw.Push(Event{Time: t0.Add(11 * time.Second), Op: OpWrite, App: "a", Key: "z"})

	sw.Flush()
	SortGroups(got)
	var keys [][]string
	for _, g := range got {
		keys = append(keys, g.Keys)
	}
	// x@0 and y@2s must be separate groups (1s window) in time order —
	// without the guard the poison watermark forces arrival-order
	// processing, grouping y before x. The poison key drains at Flush.
	want := [][]string{{"x"}, {"y"}, {"z"}, {"poison"}}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("groups = %v, want %v", keys, want)
	}
}

// Regression: Flush's drain bound must be MaxInt64 — with a smaller
// sentinel, a quarantined event stamped near the int64 limit stayed in
// the reorder buffer forever, breaking "Flush windows every buffered
// event".
func TestStreamWindowerFlushDrainsMaxTimestamp(t *testing.T) {
	var got []Group
	sw := NewStreamWindower(time.Second, GroupAnchored, 0, func(g *Group) {
		got = append(got, cloneGroup(g))
	})
	sw.SetFutureLimit(time.Second, func() time.Time { return t0 })
	sw.Push(Event{Time: time.Unix(0, math.MaxInt64), Op: OpWrite, App: "a", Key: "edge"})
	sw.Flush()
	if sw.Pending() != 0 {
		t.Fatalf("Pending = %d after Flush, want 0", sw.Pending())
	}
	if len(got) != 1 || got[0].Keys[0] != "edge" {
		t.Fatalf("groups = %+v, want one {edge} group", got)
	}
}
