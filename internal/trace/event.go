// Package trace defines the event model Ocasta records when observing an
// application's accesses to its configuration store, together with codecs
// for persisting traces, summary statistics (Table I of the paper), and the
// sliding-window co-modification grouping that feeds the clustering engine.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Op is the kind of configuration-store access an event records.
type Op uint8

// Operations recorded by Ocasta's loggers.
const (
	OpRead Op = iota + 1
	OpWrite
	OpDelete
)

// String returns the canonical lower-case name of the operation.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Valid reports whether o is one of the defined operations.
func (o Op) Valid() bool { return o == OpRead || o == OpWrite || o == OpDelete }

// StoreKind identifies which configuration store an event was captured from.
type StoreKind uint8

// The configuration stores Ocasta has loggers for.
const (
	StoreRegistry StoreKind = iota + 1 // simulated Windows registry
	StoreGConf                         // simulated GConf database
	StoreFile                          // application-specific configuration file
)

// String returns the canonical name of the store kind.
func (s StoreKind) String() string {
	switch s {
	case StoreRegistry:
		return "registry"
	case StoreGConf:
		return "gconf"
	case StoreFile:
		return "file"
	default:
		return fmt.Sprintf("store(%d)", uint8(s))
	}
}

// Valid reports whether s is one of the defined store kinds.
func (s StoreKind) Valid() bool {
	return s == StoreRegistry || s == StoreGConf || s == StoreFile
}

// Event is a single logged access to a configuration setting.
//
// Key is the fully qualified setting name within the application's store
// (registry path, GConf path, or flattened file key). Value carries the
// written content for OpWrite and is empty for OpRead and OpDelete.
type Event struct {
	Time  time.Time
	Op    Op
	Store StoreKind
	App   string
	User  string
	Key   string
	Value string
}

// Trace is an ordered sequence of events captured from one machine or, for
// the Linux lab machines of the paper, aggregated per user across machines.
type Trace struct {
	// Name identifies the machine or user the trace was collected from,
	// e.g. "Windows 7" or "Linux-1".
	Name   string
	Events []Event
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{Name: t.Name, Events: make([]Event, len(t.Events))}
	copy(out.Events, t.Events)
	return out
}

// SortByTime orders events chronologically (stable, so the relative order of
// equal-timestamp events — common with second-granularity collection — is
// preserved).
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		return t.Events[i].Time.Before(t.Events[j].Time)
	})
}

// Filter returns a new trace containing only events accepted by keep.
func (t *Trace) Filter(keep func(Event) bool) *Trace {
	out := &Trace{Name: t.Name}
	for _, ev := range t.Events {
		if keep(ev) {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// ByApp returns a new trace with only the events of the named application.
func (t *Trace) ByApp(app string) *Trace {
	return t.Filter(func(ev Event) bool { return ev.App == app })
}

// Span returns the first and last event timestamps. ok is false when the
// trace is empty.
func (t *Trace) Span() (first, last time.Time, ok bool) {
	if len(t.Events) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first, last = t.Events[0].Time, t.Events[0].Time
	for _, ev := range t.Events[1:] {
		if ev.Time.Before(first) {
			first = ev.Time
		}
		if ev.Time.After(last) {
			last = ev.Time
		}
	}
	return first, last, true
}

// Writes returns the write and delete events of the trace in chronological
// order. Deletions count as modifications for clustering purposes, exactly
// as in the paper's TTKV, where deletions are recorded in the value history.
func (t *Trace) Writes() []Event {
	out := make([]Event, 0, len(t.Events)/4+1)
	for _, ev := range t.Events {
		if ev.Op == OpWrite || ev.Op == OpDelete {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}
