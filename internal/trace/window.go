package trace

import (
	"sort"
	"time"
)

// GroupMode selects how the sliding window turns a write stream into
// co-modification groups.
type GroupMode uint8

const (
	// GroupAnchored opens a group at the first ungrouped write and extends
	// it to every write within the window of that anchor. This bounds a
	// group's duration by the window size and is the default used for the
	// paper's experiments.
	GroupAnchored GroupMode = iota + 1
	// GroupChained extends a group as long as consecutive writes are within
	// the window of each other, so a burst of closely spaced writes forms a
	// single group regardless of total duration.
	GroupChained
)

// String returns the canonical name of the mode.
func (m GroupMode) String() string {
	switch m {
	case GroupAnchored:
		return "anchored"
	case GroupChained:
		return "chained"
	default:
		return "unknown"
	}
}

// Group is one co-modification episode: the set of keys written together
// within a single sliding window.
type Group struct {
	Start time.Time
	End   time.Time
	// App identifies the application whose writes formed the group (taken
	// from the event that anchored it). Windowing is always per-app, so
	// every member write carries this application.
	App string
	// Keys holds the distinct keys written in the window, sorted. A key
	// appears once per group no matter how many raw writes hit it, so a
	// group represents one logical "modified together" episode.
	Keys []string
}

// Contains reports whether the group touched key.
func (g *Group) Contains(key string) bool {
	i := sort.SearchStrings(g.Keys, key)
	return i < len(g.Keys) && g.Keys[i] == key
}

// Windower slices a chronological write stream into co-modification groups.
// The zero value is not usable; construct with NewWindower.
type Windower struct {
	window time.Duration
	mode   GroupMode
}

// DefaultWindow is the paper's default sliding-window size. The trace
// collection infrastructure records timestamps to the nearest second, so
// one second is also the minimum meaningful window.
const DefaultWindow = time.Second

// NewWindower returns a windower with the given window size and mode.
// A negative window is treated as zero (writes group only when they carry
// an identical timestamp, the paper's "zero seconds" configuration).
func NewWindower(window time.Duration, mode GroupMode) *Windower {
	if window < 0 {
		window = 0
	}
	if mode != GroupChained {
		mode = GroupAnchored
	}
	return &Windower{window: window, mode: mode}
}

// Window returns the configured window size.
func (w *Windower) Window() time.Duration { return w.window }

// Mode returns the configured grouping mode.
func (w *Windower) Mode() GroupMode { return w.mode }

// Groups splits writes (which must contain only OpWrite/OpDelete events)
// into co-modification groups. The input does not need to be sorted.
func (w *Windower) Groups(writes []Event) []Group {
	if len(writes) == 0 {
		return nil
	}
	evs := make([]Event, len(writes))
	copy(evs, writes)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })

	var groups []Group
	cur := map[string]struct{}{evs[0].Key: {}}
	anchor, prev := evs[0].Time, evs[0].Time
	app := evs[0].App
	flush := func(end time.Time) {
		keys := make([]string, 0, len(cur))
		for k := range cur {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		groups = append(groups, Group{Start: anchor, End: end, App: app, Keys: keys})
	}
	for _, ev := range evs[1:] {
		var within bool
		switch w.mode {
		case GroupChained:
			within = ev.Time.Sub(prev) <= w.window
		default:
			within = ev.Time.Sub(anchor) <= w.window
		}
		if !within {
			flush(prev)
			cur = make(map[string]struct{})
			anchor = ev.Time
			app = ev.App
		}
		cur[ev.Key] = struct{}{}
		prev = ev.Time
	}
	flush(prev)
	return groups
}

// GroupTrace extracts the write stream of tr and windows it. Events from
// different applications are grouped independently so that two unrelated
// applications flushing settings in the same second do not appear
// co-modified; the per-application groups are returned merged in
// chronological order.
func (w *Windower) GroupTrace(tr *Trace) []Group {
	byApp := make(map[string][]Event)
	for _, ev := range tr.Writes() {
		byApp[ev.App] = append(byApp[ev.App], ev)
	}
	var all []Group
	for _, evs := range byApp {
		all = append(all, w.Groups(evs)...)
	}
	SortGroups(all)
	return all
}

// SortGroups orders groups chronologically with a full deterministic
// tie-break on (Start, App, first key). Sorting by Start alone is not
// enough: two applications flushing settings in the same second produce
// equal-Start groups whose relative order would otherwise follow map
// iteration.
func SortGroups(groups []Group) {
	sort.SliceStable(groups, func(i, j int) bool {
		a, b := &groups[i], &groups[j]
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.App != b.App {
			return a.App < b.App
		}
		return firstKey(a) < firstKey(b)
	})
}

func firstKey(g *Group) string {
	if len(g.Keys) == 0 {
		return ""
	}
	return g.Keys[0]
}
