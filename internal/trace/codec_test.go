package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "Windows 7",
		Events: []Event{
			{Time: t0, Op: OpWrite, Store: StoreRegistry, App: "word", User: "u1", Key: `HKCU\Software\Word\Max Display`, Value: "9"},
			{Time: t0.Add(time.Second), Op: OpRead, Store: StoreRegistry, App: "word", User: "u1", Key: `HKCU\Software\Word\Item 1`},
			{Time: t0.Add(2 * time.Second), Op: OpDelete, Store: StoreRegistry, App: "word", User: "u1", Key: `HKCU\Software\Word\Item 9`},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOPE....."))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadBinaryBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{0xFF, 0x00}) // version 255
	_, err := ReadBinary(&buf)
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any truncation must produce an error, never a panic or silent success.
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes: expected error, got nil", cut)
		}
	}
}

func TestReadBinaryCorruptOp(t *testing.T) {
	tr := &Trace{Name: "x", Events: []Event{{Time: t0, Op: OpWrite, Store: StoreFile, App: "a", Key: "k"}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The op byte follows magic(4) + version(2) + name(4+1) + count(4) + time(8).
	opOff := 4 + 2 + 4 + 1 + 4 + 8
	raw[opOff] = 0xEE
	if _, err := ReadBinary(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadBinaryOversizedString(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{0x01, 0x00})             // version 1
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // name length = 4 GiB
	if _, err := ReadBinary(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for oversized string", err)
	}
}

func TestReadJSONLBadOp(t *testing.T) {
	in := `{"trace":"x"}
{"time":"2013-06-01T12:00:00Z","op":"scribble","store":"file","app":"a","key":"k"}
`
	if _, err := ReadJSONL(strings.NewReader(in)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for bad op", err)
	}
}

func TestReadJSONLBadStore(t *testing.T) {
	in := `{"trace":"x"}
{"time":"2013-06-01T12:00:00Z","op":"write","store":"floppy","app":"a","key":"k"}
`
	if _, err := ReadJSONL(strings.NewReader(in)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for bad store", err)
	}
}

func TestReadJSONLEmptyInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("expected error for empty input")
	}
}

// Property: binary round trip preserves arbitrary event content, including
// keys and values with embedded NULs, newlines, and non-UTF8-safe bytes.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(name, app, user, key, value string, sec int32, opSel, storeSel uint8) bool {
		ops := []Op{OpRead, OpWrite, OpDelete}
		stores := []StoreKind{StoreRegistry, StoreGConf, StoreFile}
		tr := &Trace{Name: name, Events: []Event{{
			Time:  time.Unix(int64(sec), 0).UTC(),
			Op:    ops[int(opSel)%len(ops)],
			Store: stores[int(storeSel)%len(stores)],
			App:   app, User: user, Key: key, Value: value,
		}}}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
