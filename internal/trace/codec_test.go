package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"
	"unsafe"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "Windows 7",
		Events: []Event{
			{Time: t0, Op: OpWrite, Store: StoreRegistry, App: "word", User: "u1", Key: `HKCU\Software\Word\Max Display`, Value: "9"},
			{Time: t0.Add(time.Second), Op: OpRead, Store: StoreRegistry, App: "word", User: "u1", Key: `HKCU\Software\Word\Item 1`},
			{Time: t0.Add(2 * time.Second), Op: OpDelete, Store: StoreRegistry, App: "word", User: "u1", Key: `HKCU\Software\Word\Item 9`},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOPE....."))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadBinaryBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{0xFF, 0x00}) // version 255
	_, err := ReadBinary(&buf)
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any truncation must produce an error, never a panic or silent success.
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes: expected error, got nil", cut)
		}
	}
}

func TestReadBinaryCorruptOp(t *testing.T) {
	tr := &Trace{Name: "x", Events: []Event{{Time: t0, Op: OpWrite, Store: StoreFile, App: "a", Key: "k"}}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The op byte follows magic(4) + version(2) + name(4+1) + count(4) + time(8).
	opOff := 4 + 2 + 4 + 1 + 4 + 8
	raw[opOff] = 0xEE
	if _, err := ReadBinary(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadBinaryOversizedString(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{0x01, 0x00})             // version 1
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // name length = 4 GiB
	if _, err := ReadBinary(&buf); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for oversized string", err)
	}
}

func TestReadJSONLBadOp(t *testing.T) {
	in := `{"trace":"x"}
{"time":"2013-06-01T12:00:00Z","op":"scribble","store":"file","app":"a","key":"k"}
`
	if _, err := ReadJSONL(strings.NewReader(in)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for bad op", err)
	}
}

func TestReadJSONLBadStore(t *testing.T) {
	in := `{"trace":"x"}
{"time":"2013-06-01T12:00:00Z","op":"write","store":"floppy","app":"a","key":"k"}
`
	if _, err := ReadJSONL(strings.NewReader(in)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for bad store", err)
	}
}

func TestReadJSONLEmptyInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("expected error for empty input")
	}
}

// Property: binary round trip preserves arbitrary event content, including
// keys and values with embedded NULs, newlines, and non-UTF8-safe bytes.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(name, app, user, key, value string, sec int32, opSel, storeSel uint8) bool {
		ops := []Op{OpRead, OpWrite, OpDelete}
		stores := []StoreKind{StoreRegistry, StoreGConf, StoreFile}
		tr := &Trace{Name: name, Events: []Event{{
			Time:  time.Unix(int64(sec), 0).UTC(),
			Op:    ops[int(opSel)%len(ops)],
			Store: stores[int(storeSel)%len(stores)],
			App:   app, User: user, Key: key, Value: value,
		}}}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryStreamRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got := &Trace{}
	name, err := ReadBinaryStream(&buf, func(ev Event) error {
		got.Events = append(got.Events, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadBinaryStream: %v", err)
	}
	got.Name = name
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("stream decode mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestReadBinaryStreamInternsStrings(t *testing.T) {
	tr := &Trace{Name: "x"}
	for i := 0; i < 10; i++ {
		tr.Events = append(tr.Events, Event{
			Time: t0.Add(time.Duration(i) * time.Second),
			Op:   OpWrite, Store: StoreFile, App: "app", User: "u", Key: "k", Value: "v",
		})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if _, err := ReadBinaryStream(&buf, func(ev Event) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Interned strings must be pointer-identical across events, not just
	// equal: the whole point is that repeated App/User/Key values share
	// one allocation.
	for i := 1; i < len(events); i++ {
		if unsafe.StringData(events[i].Key) != unsafe.StringData(events[0].Key) {
			t.Fatalf("event %d Key not interned", i)
		}
		if unsafe.StringData(events[i].App) != unsafe.StringData(events[0].App) {
			t.Fatalf("event %d App not interned", i)
		}
	}
}

func TestReadBinaryStreamCallbackError(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	calls := 0
	if _, err := ReadBinaryStream(&buf, func(Event) error {
		calls++
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after error, want 1", calls)
	}
}

// Regression: a corrupt event count used to drive make([]Event, 0, count)
// directly, so a 12-byte file claiming 4 billion events allocated
// gigabytes before the first decode failed.
func TestReadBinaryCorruptCountBoundedAlloc(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.Write([]byte{0x01, 0x00})             // version 1
	buf.Write([]byte{0x01, 0x00, 0x00, 0x00}) // name length 1
	buf.WriteByte('x')
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // count = 4 billion

	before := memStatsAlloc()
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected decode error")
	}
	after := memStatsAlloc()
	// The prealloc cap bounds the up-front slice at maxEventPrealloc
	// events (~a few MiB); without it this decode allocated ~400 GiB.
	if grew := after - before; grew > 64<<20 {
		t.Fatalf("corrupt count allocated %d bytes", grew)
	}
}

func memStatsAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

func TestReadBinaryStreamMetaSkipsValues(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var events []Event
	name, err := ReadBinaryStreamMeta(&buf, func(ev Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadBinaryStreamMeta: %v", err)
	}
	if name != tr.Name || len(events) != len(tr.Events) {
		t.Fatalf("name=%q events=%d, want %q/%d", name, len(events), tr.Name, len(tr.Events))
	}
	for i := range events {
		want := tr.Events[i]
		want.Value = ""
		if !reflect.DeepEqual(events[i], want) {
			t.Errorf("event %d = %+v, want %+v (empty Value)", i, events[i], want)
		}
	}
}
