package trace

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// fuzzSeedTrace is a small trace covering every field shape the binary
// codec serializes.
func fuzzSeedTrace() *Trace {
	t0 := time.Date(2013, 9, 1, 10, 0, 0, 0, time.UTC)
	return &Trace{
		Name: "fuzz-seed",
		Events: []Event{
			{Time: t0, Op: OpWrite, Store: StoreRegistry, App: "msword", User: "u1", Key: `HKCU\Software\W`, Value: "REG_DWORD:1"},
			{Time: t0.Add(time.Second), Op: OpRead, Store: StoreGConf, App: "evolution", Key: "/apps/e/k"},
			{Time: t0.Add(2 * time.Second), Op: OpDelete, Store: StoreFile, App: "vlc", User: "u2", Key: "~/.config/vlc/vlcrc:general.volume", Value: ""},
			{Time: time.Unix(0, -1).UTC(), Op: OpWrite, Store: StoreGConf, App: "", Key: "", Value: string([]byte{0, 255, 10, 13})},
		},
	}
}

// FuzzReadBinary feeds arbitrary bytes through the binary trace decoder
// and checks the codec's internal consistency:
//
//  1. The batch decoder (ReadBinary) and the streaming decoders
//     (ReadBinaryStream, ReadBinaryStreamMeta) accept exactly the same
//     inputs and agree on every decoded event.
//  2. Whatever decodes successfully re-encodes (WriteBinary) and decodes
//     again to the identical trace — the codec cannot silently lose or
//     alter data it accepted.
//
// The decoder must never panic or over-allocate regardless of input; the
// corrupt-count and string-length caps are what this mainly hammers.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, fuzzSeedTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("OCTR"))
	f.Add([]byte{})
	// Header with a huge declared event count and no payload.
	hdr := append([]byte("OCTR"), 1, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff)
	f.Add(hdr)
	if seed.Len() > 15 {
		f.Add(seed.Bytes()[:12])           // truncated mid-header
		f.Add(seed.Bytes()[:seed.Len()-3]) // truncated mid-events
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, batchErr := ReadBinary(bytes.NewReader(data))

		var streamed []Event
		streamName, streamErr := ReadBinaryStream(bytes.NewReader(data), func(ev Event) error {
			streamed = append(streamed, ev)
			return nil
		})
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("batch/stream disagree: batch=%v stream=%v", batchErr, streamErr)
		}
		var metaCount int
		_, metaErr := ReadBinaryStreamMeta(bytes.NewReader(data), func(Event) error {
			metaCount++
			return nil
		})
		if (batchErr == nil) != (metaErr == nil) {
			t.Fatalf("batch/meta disagree: batch=%v meta=%v", batchErr, metaErr)
		}
		if batchErr != nil {
			return
		}
		if streamName != tr.Name {
			t.Fatalf("stream name %q != batch name %q", streamName, tr.Name)
		}
		if len(streamed) != len(tr.Events) || metaCount != len(tr.Events) {
			t.Fatalf("stream decoded %d events, meta %d, batch %d", len(streamed), metaCount, len(tr.Events))
		}
		for i := range streamed {
			if !streamed[i].Time.Equal(tr.Events[i].Time) || streamed[i].Op != tr.Events[i].Op ||
				streamed[i].Store != tr.Events[i].Store || streamed[i].App != tr.Events[i].App ||
				streamed[i].User != tr.Events[i].User || streamed[i].Key != tr.Events[i].Key ||
				streamed[i].Value != tr.Events[i].Value {
				t.Fatalf("event %d: stream %+v != batch %+v", i, streamed[i], tr.Events[i])
			}
		}

		// Re-encode/decode roundtrip.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if tr2.Name != tr.Name || len(tr2.Events) != len(tr.Events) {
			t.Fatalf("roundtrip shape changed: %q/%d vs %q/%d", tr2.Name, len(tr2.Events), tr.Name, len(tr.Events))
		}
		if len(tr.Events) > 0 && !reflect.DeepEqual(tr2.Events, tr.Events) {
			t.Fatalf("roundtrip altered events:\n%+v\nvs\n%+v", tr2.Events, tr.Events)
		}
	})
}
