package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Codec errors.
var (
	ErrBadMagic   = errors.New("trace: bad magic; not a trace file")
	ErrBadVersion = errors.New("trace: unsupported format version")
	ErrCorrupt    = errors.New("trace: corrupt record")
)

const (
	binaryMagic   = "OCTR"
	binaryVersion = 1
	// maxStringLen bounds any encoded string so a corrupt length prefix
	// cannot trigger a giant allocation.
	maxStringLen = 1 << 20
)

// WriteBinary serializes the trace in Ocasta's compact binary format:
//
//	magic "OCTR" | u16 version | name | u32 count | count * event
//
// where strings are u32 length-prefixed UTF-8 and times are i64 UnixNano.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(binaryVersion)); err != nil {
		return err
	}
	if err := writeString(bw, tr.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(tr.Events))); err != nil {
		return err
	}
	for i := range tr.Events {
		if err := writeEvent(bw, &tr.Events[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// maxEventPrealloc caps the []Event preallocation ReadBinary derives from
// the untrusted count prefix. A corrupt or hostile count can therefore
// waste at most ~a few MiB up front; a genuinely large trace still decodes
// correctly, growing by append past the cap. (An io.Reader carries no
// length, so the cap is the strongest bound available against "count says
// 4 billion, stream holds 12 bytes".)
const maxEventPrealloc = 1 << 16

// ReadBinary parses a trace previously written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var d decoder
	name, count, err := d.readHeader(br)
	if err != nil {
		return nil, err
	}
	prealloc := count
	if prealloc > maxEventPrealloc {
		prealloc = maxEventPrealloc
	}
	tr := &Trace{Name: name, Events: make([]Event, 0, prealloc)}
	for i := uint32(0); i < count; i++ {
		ev, err := d.readEvent(br)
		if err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", i, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}

// ReadBinaryStream decodes a trace written by WriteBinary one event at a
// time, calling fn for each without materialising the event slice — the
// decode path of the streaming analytics pipeline. App, User, and Key
// strings are interned across events (a trace has few distinct values for
// each, repeated per event), so steady-state decoding allocates only each
// event's Value. fn returning an error stops the decode and surfaces the
// error. Returns the trace name from the header.
func ReadBinaryStream(r io.Reader, fn func(Event) error) (string, error) {
	return readBinaryStream(r, fn, false)
}

// ReadBinaryStreamMeta is ReadBinaryStream for consumers that only need
// event metadata (time, op, store, app, user, key): written values are
// decoded past but not materialised, so Value arrives empty and the
// steady-state decode loop allocates nothing per event. This is the
// decode path of the streaming clustering pipeline, which never inspects
// values.
func ReadBinaryStreamMeta(r io.Reader, fn func(Event) error) (string, error) {
	return readBinaryStream(r, fn, true)
}

func readBinaryStream(r io.Reader, fn func(Event) error, skipValues bool) (string, error) {
	br := bufio.NewReader(r)
	d := decoder{intern: make(map[string]string), skipValues: skipValues}
	name, count, err := d.readHeader(br)
	if err != nil {
		return "", err
	}
	for i := uint32(0); i < count; i++ {
		ev, err := d.readEvent(br)
		if err != nil {
			return name, fmt.Errorf("trace: decoding event %d: %w", i, err)
		}
		if err := fn(ev); err != nil {
			return name, err
		}
	}
	return name, nil
}

// decoder holds the scratch state of one binary decode: a fixed buffer
// for numeric fields and string payloads (so the hot loop performs direct
// little-endian loads instead of reflection-based binary.Read calls) and
// an optional intern table.
type decoder struct {
	scratch    [64]byte
	str        []byte
	intern     map[string]string
	skipValues bool
}

func (d *decoder) readHeader(br *bufio.Reader) (name string, count uint32, err error) {
	magic := d.scratch[:len(binaryMagic)]
	if _, err := io.ReadFull(br, magic); err != nil {
		return "", 0, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic) != binaryMagic {
		return "", 0, ErrBadMagic
	}
	if _, err := io.ReadFull(br, d.scratch[:2]); err != nil {
		return "", 0, err
	}
	if ver := binary.LittleEndian.Uint16(d.scratch[:2]); ver != binaryVersion {
		return "", 0, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	if name, err = d.readString(br, false); err != nil {
		return "", 0, err
	}
	if _, err := io.ReadFull(br, d.scratch[:4]); err != nil {
		return "", 0, err
	}
	return name, binary.LittleEndian.Uint32(d.scratch[:4]), nil
}

func (d *decoder) readEvent(r *bufio.Reader) (Event, error) {
	var ev Event
	// Fixed-size prefix in one read: i64 nanos, op byte, store byte.
	if _, err := io.ReadFull(r, d.scratch[:10]); err != nil {
		return ev, err
	}
	nanos := int64(binary.LittleEndian.Uint64(d.scratch[:8]))
	ev.Time = time.Unix(0, nanos).UTC()
	ev.Op = Op(d.scratch[8])
	if !ev.Op.Valid() {
		return ev, fmt.Errorf("%w: op %d", ErrCorrupt, d.scratch[8])
	}
	ev.Store = StoreKind(d.scratch[9])
	if !ev.Store.Valid() {
		return ev, fmt.Errorf("%w: store %d", ErrCorrupt, d.scratch[9])
	}
	var err error
	if ev.App, err = d.readString(r, true); err != nil {
		return ev, err
	}
	if ev.User, err = d.readString(r, true); err != nil {
		return ev, err
	}
	if ev.Key, err = d.readString(r, true); err != nil {
		return ev, err
	}
	// Values are not interned: they are near-unique, so the table would
	// only grow without ever hitting. Metadata-only consumers skip the
	// allocation entirely.
	if d.skipValues {
		if err = d.discardString(r); err != nil {
			return ev, err
		}
		return ev, nil
	}
	if ev.Value, err = d.readString(r, false); err != nil {
		return ev, err
	}
	return ev, nil
}

// discardString consumes one length-prefixed string without building it.
func (d *decoder) discardString(r *bufio.Reader) error {
	if _, err := io.ReadFull(r, d.scratch[:4]); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(d.scratch[:4])
	if n > maxStringLen {
		return fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	if _, err := r.Discard(int(n)); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// readString reads one u32 length-prefixed string. With interned set and
// an intern table present, repeated strings are returned from the table
// without allocating (the map lookup on a []byte key does not copy).
func (d *decoder) readString(r *bufio.Reader, interned bool) (string, error) {
	if _, err := io.ReadFull(r, d.scratch[:4]); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(d.scratch[:4])
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	if cap(d.str) < int(n) {
		d.str = make([]byte, n)
	}
	buf := d.str[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if interned && d.intern != nil {
		if s, ok := d.intern[string(buf)]; ok {
			return s, nil
		}
		s := string(buf)
		d.intern[s] = s
		return s, nil
	}
	return string(buf), nil
}

func writeEvent(w *bufio.Writer, ev *Event) error {
	if err := binary.Write(w, binary.LittleEndian, ev.Time.UnixNano()); err != nil {
		return err
	}
	if err := w.WriteByte(byte(ev.Op)); err != nil {
		return err
	}
	if err := w.WriteByte(byte(ev.Store)); err != nil {
		return err
	}
	for _, s := range []string{ev.App, ev.User, ev.Key, ev.Value} {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writeString(w *bufio.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// jsonEvent is the JSON wire shape of an event; times are RFC 3339 with
// nanoseconds so second-granularity traces stay human-readable.
type jsonEvent struct {
	Time  time.Time `json:"time"`
	Op    string    `json:"op"`
	Store string    `json:"store"`
	App   string    `json:"app"`
	User  string    `json:"user,omitempty"`
	Key   string    `json:"key"`
	Value string    `json:"value,omitempty"`
}

var opNames = map[string]Op{"read": OpRead, "write": OpWrite, "delete": OpDelete}

var storeNames = map[string]StoreKind{
	"registry": StoreRegistry,
	"gconf":    StoreGConf,
	"file":     StoreFile,
}

// WriteJSONL writes the trace as one JSON object per line, preceded by a
// header line carrying the trace name.
func WriteJSONL(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := struct {
		Trace string `json:"trace"`
	}{Trace: tr.Name}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		je := jsonEvent{
			Time: ev.Time, Op: ev.Op.String(), Store: ev.Store.String(),
			App: ev.App, User: ev.User, Key: ev.Key, Value: ev.Value,
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header struct {
		Trace string `json:"trace"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	tr := &Trace{Name: header.Trace}
	for i := 0; ; i++ {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: decoding event %d: %w", i, err)
		}
		op, ok := opNames[je.Op]
		if !ok {
			return nil, fmt.Errorf("%w: op %q", ErrCorrupt, je.Op)
		}
		store, ok := storeNames[je.Store]
		if !ok {
			return nil, fmt.Errorf("%w: store %q", ErrCorrupt, je.Store)
		}
		tr.Events = append(tr.Events, Event{
			Time: je.Time, Op: op, Store: store,
			App: je.App, User: je.User, Key: je.Key, Value: je.Value,
		})
	}
	return tr, nil
}
