package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Codec errors.
var (
	ErrBadMagic   = errors.New("trace: bad magic; not a trace file")
	ErrBadVersion = errors.New("trace: unsupported format version")
	ErrCorrupt    = errors.New("trace: corrupt record")
)

const (
	binaryMagic   = "OCTR"
	binaryVersion = 1
	// maxStringLen bounds any encoded string so a corrupt length prefix
	// cannot trigger a giant allocation.
	maxStringLen = 1 << 20
)

// WriteBinary serializes the trace in Ocasta's compact binary format:
//
//	magic "OCTR" | u16 version | name | u32 count | count * event
//
// where strings are u32 length-prefixed UTF-8 and times are i64 UnixNano.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(binaryVersion)); err != nil {
		return err
	}
	if err := writeString(bw, tr.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(tr.Events))); err != nil {
		return err
	}
	for i := range tr.Events {
		if err := writeEvent(bw, &tr.Events[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadBinary parses a trace previously written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(magic) != binaryMagic {
		return nil, ErrBadMagic
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	tr := &Trace{Name: name, Events: make([]Event, 0, count)}
	for i := uint32(0); i < count; i++ {
		ev, err := readEvent(br)
		if err != nil {
			return nil, fmt.Errorf("trace: decoding event %d: %w", i, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}

func writeEvent(w *bufio.Writer, ev *Event) error {
	if err := binary.Write(w, binary.LittleEndian, ev.Time.UnixNano()); err != nil {
		return err
	}
	if err := w.WriteByte(byte(ev.Op)); err != nil {
		return err
	}
	if err := w.WriteByte(byte(ev.Store)); err != nil {
		return err
	}
	for _, s := range []string{ev.App, ev.User, ev.Key, ev.Value} {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	return nil
}

func readEvent(r *bufio.Reader) (Event, error) {
	var ev Event
	var nanos int64
	if err := binary.Read(r, binary.LittleEndian, &nanos); err != nil {
		return ev, err
	}
	ev.Time = time.Unix(0, nanos).UTC()
	op, err := r.ReadByte()
	if err != nil {
		return ev, err
	}
	ev.Op = Op(op)
	if !ev.Op.Valid() {
		return ev, fmt.Errorf("%w: op %d", ErrCorrupt, op)
	}
	st, err := r.ReadByte()
	if err != nil {
		return ev, err
	}
	ev.Store = StoreKind(st)
	if !ev.Store.Valid() {
		return ev, fmt.Errorf("%w: store %d", ErrCorrupt, st)
	}
	for _, dst := range []*string{&ev.App, &ev.User, &ev.Key, &ev.Value} {
		s, err := readString(r)
		if err != nil {
			return ev, err
		}
		*dst = s
	}
	return ev, nil
}

func writeString(w *bufio.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}

// jsonEvent is the JSON wire shape of an event; times are RFC 3339 with
// nanoseconds so second-granularity traces stay human-readable.
type jsonEvent struct {
	Time  time.Time `json:"time"`
	Op    string    `json:"op"`
	Store string    `json:"store"`
	App   string    `json:"app"`
	User  string    `json:"user,omitempty"`
	Key   string    `json:"key"`
	Value string    `json:"value,omitempty"`
}

var opNames = map[string]Op{"read": OpRead, "write": OpWrite, "delete": OpDelete}

var storeNames = map[string]StoreKind{
	"registry": StoreRegistry,
	"gconf":    StoreGConf,
	"file":     StoreFile,
}

// WriteJSONL writes the trace as one JSON object per line, preceded by a
// header line carrying the trace name.
func WriteJSONL(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := struct {
		Trace string `json:"trace"`
	}{Trace: tr.Name}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for i := range tr.Events {
		ev := &tr.Events[i]
		je := jsonEvent{
			Time: ev.Time, Op: ev.Op.String(), Store: ev.Store.String(),
			App: ev.App, User: ev.User, Key: ev.Key, Value: ev.Value,
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header struct {
		Trace string `json:"trace"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	tr := &Trace{Name: header.Trace}
	for i := 0; ; i++ {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: decoding event %d: %w", i, err)
		}
		op, ok := opNames[je.Op]
		if !ok {
			return nil, fmt.Errorf("%w: op %q", ErrCorrupt, je.Op)
		}
		store, ok := storeNames[je.Store]
		if !ok {
			return nil, fmt.Errorf("%w: store %q", ErrCorrupt, je.Store)
		}
		tr.Events = append(tr.Events, Event{
			Time: je.Time, Op: op, Store: store,
			App: je.App, User: je.User, Key: je.Key, Value: je.Value,
		})
	}
	return tr, nil
}
