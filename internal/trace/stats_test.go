package trace

import (
	"testing"
	"time"
)

func TestSummarizeCounts(t *testing.T) {
	tr := &Trace{Name: "Linux-1", Events: []Event{
		ev(0, OpWrite, "a"),
		ev(1, OpRead, "a"),
		ev(2, OpRead, "b"),
		ev(3, OpDelete, "b"),
		ev(4, OpWrite, "c"),
	}}
	st := Summarize(tr)
	if st.Name != "Linux-1" {
		t.Errorf("Name = %q", st.Name)
	}
	if st.Reads != 2 {
		t.Errorf("Reads = %d, want 2", st.Reads)
	}
	if st.Writes != 3 { // 2 writes + 1 delete
		t.Errorf("Writes = %d, want 3", st.Writes)
	}
	if st.Deletes != 1 {
		t.Errorf("Deletes = %d, want 1", st.Deletes)
	}
	if st.Keys != 3 {
		t.Errorf("Keys = %d, want 3", st.Keys)
	}
	if st.Days != 1 {
		t.Errorf("Days = %d, want 1 (sub-day trace rounds up)", st.Days)
	}
}

func TestSummarizeDaysRoundUp(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: t0, Op: OpWrite, Key: "k", App: "a"},
		{Time: t0.Add(25 * time.Hour), Op: OpWrite, Key: "k", App: "a"},
	}}
	if st := Summarize(tr); st.Days != 2 {
		t.Errorf("Days = %d, want 2 for a 25h span", st.Days)
	}
	tr.Events[1].Time = t0.Add(48 * time.Hour)
	if st := Summarize(tr); st.Days != 2 {
		t.Errorf("Days = %d, want 2 for an exact 48h span", st.Days)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(&Trace{Name: "empty"})
	if st.Days != 0 || st.Keys != 0 || st.Reads != 0 || st.Writes != 0 {
		t.Errorf("empty trace stats = %+v, want zeros", st)
	}
}

func TestKeyWriteCounts(t *testing.T) {
	tr := &Trace{Events: []Event{
		ev(0, OpWrite, "a"), ev(1, OpWrite, "a"), ev(2, OpDelete, "a"),
		ev(3, OpWrite, "b"),
		ev(4, OpRead, "c"), // reads don't count
	}}
	counts := KeyWriteCounts(tr)
	if counts["a"] != 3 || counts["b"] != 1 {
		t.Errorf("counts = %v, want a:3 b:1", counts)
	}
	if _, ok := counts["c"]; ok {
		t.Error("read-only key must not appear in write counts")
	}
}

func TestMergeByUser(t *testing.T) {
	m1 := &Trace{Name: "machine1", Events: []Event{
		{Time: t0.Add(2 * time.Second), Op: OpWrite, User: "alice", Key: "k1", App: "a"},
		{Time: t0, Op: OpWrite, User: "bob", Key: "k2", App: "a"},
	}}
	m2 := &Trace{Name: "machine2", Events: []Event{
		{Time: t0.Add(time.Second), Op: OpWrite, User: "alice", Key: "k3", App: "a"},
	}}
	merged := MergeByUser([]*Trace{m1, m2})
	if len(merged) != 2 {
		t.Fatalf("got %d users, want 2", len(merged))
	}
	// Sorted by user name: alice then bob.
	alice := merged[0]
	if alice.Name != "alice" || len(alice.Events) != 2 {
		t.Fatalf("alice trace = %+v", alice)
	}
	if !alice.Events[0].Time.Before(alice.Events[1].Time) {
		t.Error("merged events must be chronological across machines")
	}
	if merged[1].Name != "bob" || len(merged[1].Events) != 1 {
		t.Errorf("bob trace wrong: %+v", merged[1])
	}
}

func TestMergeByUserFallsBackToTraceName(t *testing.T) {
	m := &Trace{Name: "Windows 7", Events: []Event{
		{Time: t0, Op: OpWrite, Key: "k", App: "a"}, // no user set
	}}
	merged := MergeByUser([]*Trace{m})
	if len(merged) != 1 || merged[0].Name != "Windows 7" {
		t.Fatalf("merged = %+v, want single trace named Windows 7", merged)
	}
}
