package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ocasta/internal/trace"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

// groupsOf builds co-modification groups from key lists; group i is stamped
// i seconds after t0.
func groupsOf(keyLists ...[]string) []trace.Group {
	groups := make([]trace.Group, len(keyLists))
	for i, keys := range keyLists {
		ts := t0.Add(time.Duration(i) * time.Second)
		sorted := append([]string(nil), keys...)
		groups[i] = trace.Group{Start: ts, End: ts, Keys: sorted}
	}
	return groups
}

func TestCorrelationMetric(t *testing.T) {
	tests := []struct {
		name     string
		co, a, b int
		want     float64
	}{
		{"always together", 5, 5, 5, 2},
		{"never together", 0, 5, 5, 0},
		{"half and half", 1, 2, 2, 1},
		{"asymmetric", 2, 2, 4, 1.5},
		{"zero episodes", 0, 0, 0, 0},
		{"negative guarded", -1, 5, 5, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Correlation(tt.co, tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Correlation(%d,%d,%d) = %v, want %v", tt.co, tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCorrelationBoundsProperty(t *testing.T) {
	prop := func(co, a, b uint8) bool {
		c := int(co % 50)
		ae, be := int(a%50)+c, int(b%50)+c // ensure co <= |A|, |B|
		if ae == 0 || be == 0 {
			return true
		}
		corr := Correlation(c, ae, be)
		return corr >= 0 && corr <= 2 &&
			math.Abs(corr-Correlation(c, be, ae)) < 1e-12 // symmetry
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceFromCorrelation(t *testing.T) {
	if d := DistanceFromCorrelation(2); d != 0.5 {
		t.Errorf("distance(corr=2) = %v, want 0.5", d)
	}
	if d := DistanceFromCorrelation(0); !math.IsInf(d, 1) {
		t.Errorf("distance(corr=0) = %v, want +Inf", d)
	}
	if d := DistanceFromCorrelation(1); d != 1 {
		t.Errorf("distance(corr=1) = %v, want 1", d)
	}
}

func TestDistanceMonotoneProperty(t *testing.T) {
	// Higher correlation must never increase distance.
	prop := func(x, y uint16) bool {
		cx := float64(x%2000) / 1000 // [0,2)
		cy := float64(y%2000) / 1000
		if cx > cy {
			cx, cy = cy, cx
		}
		return DistanceFromCorrelation(cx) >= DistanceFromCorrelation(cy)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPairStatsCounts(t *testing.T) {
	ps := NewPairStats(groupsOf(
		[]string{"a", "b"},
		[]string{"a", "b"},
		[]string{"a"},
		[]string{"c"},
	))
	if ps.NumKeys() != 3 {
		t.Fatalf("NumKeys = %d, want 3", ps.NumKeys())
	}
	if ps.NumGroups() != 4 {
		t.Fatalf("NumGroups = %d, want 4", ps.NumGroups())
	}
	if got := ps.Episodes("a"); got != 3 {
		t.Errorf("Episodes(a) = %d, want 3", got)
	}
	if got := ps.CoEpisodes("a", "b"); got != 2 {
		t.Errorf("CoEpisodes(a,b) = %d, want 2", got)
	}
	if got := ps.CoEpisodes("a", "c"); got != 0 {
		t.Errorf("CoEpisodes(a,c) = %d, want 0", got)
	}
	// corr(a,b) = 2/3 + 2/2 = 1.666...
	want := 2.0/3.0 + 1.0
	if got := ps.KeyCorrelation("a", "b"); math.Abs(got-want) > 1e-12 {
		t.Errorf("KeyCorrelation(a,b) = %v, want %v", got, want)
	}
	if got := ps.KeyCorrelation("a", "missing"); got != 0 {
		t.Errorf("KeyCorrelation with unknown key = %v, want 0", got)
	}
	if got := ps.Episodes("missing"); got != 0 {
		t.Errorf("Episodes(missing) = %d, want 0", got)
	}
}

func TestPairStatsSelfPair(t *testing.T) {
	ps := NewPairStats(groupsOf([]string{"a", "b"}))
	if got := ps.CoEpisodes("a", "a"); got != 0 {
		t.Errorf("CoEpisodes(a,a) = %d, want 0", got)
	}
	if got := ps.KeyCorrelation("a", "a"); got != 0 {
		t.Errorf("KeyCorrelation(a,a) = %v, want 0", got)
	}
}

func TestLinkageString(t *testing.T) {
	if LinkageComplete.String() != "complete" || LinkageSingle.String() != "single" ||
		LinkageAverage.String() != "average" {
		t.Error("linkage names wrong")
	}
	if Linkage(9).String() != "linkage(9)" {
		t.Error("unknown linkage should stringify with its number")
	}
}

func TestClusterAlwaysTogether(t *testing.T) {
	// a,b always together; c independent. Default threshold keeps {a,b}.
	ps := NewPairStats(groupsOf(
		[]string{"a", "b"},
		[]string{"a", "b"},
		[]string{"c"},
	))
	clusters := NewClusterer(LinkageComplete).Cluster(ps, DefaultThreshold)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2: %+v", len(clusters), clusters)
	}
	var ab *Cluster
	for i := range clusters {
		if clusters[i].Size() == 2 {
			ab = &clusters[i]
		}
	}
	if ab == nil || !ab.Contains("a") || !ab.Contains("b") {
		t.Fatalf("expected cluster {a,b}, got %+v", clusters)
	}
	if ab.ModCount != 4 { // a touched 2 episodes + b touched 2 episodes
		t.Errorf("ModCount = %d, want 4", ab.ModCount)
	}
	if !ab.LastModified.Equal(t0.Add(time.Second)) {
		t.Errorf("LastModified = %v, want %v", ab.LastModified, t0.Add(time.Second))
	}
}

func TestClusterSometimesTogetherNeedsLowerThreshold(t *testing.T) {
	// a,b together 2 of 3 times: corr = 2/3 + 2/3 = 4/3, distance 0.75.
	ps := NewPairStats(groupsOf(
		[]string{"a", "b"},
		[]string{"a", "b"},
		[]string{"a"},
		[]string{"b"},
	))
	cl := NewClusterer(LinkageComplete)
	strict := cl.Cluster(ps, DefaultThreshold)
	if len(strict) != 2 {
		t.Fatalf("strict threshold: got %d clusters, want 2 singletons", len(strict))
	}
	// The paper's remedy: reduce the threshold (correlation 1 -> distance 1).
	relaxed := cl.Cluster(ps, ThresholdFromCorrelation(1))
	if len(relaxed) != 1 || relaxed[0].Size() != 2 {
		t.Fatalf("relaxed threshold: got %+v, want one {a,b} cluster", relaxed)
	}
}

func TestCompleteVsSingleLinkage(t *testing.T) {
	// Chain: a-b always together; b-c always together; a-c never.
	// Under single linkage the chain collapses into {a,b,c}; under complete
	// linkage the a-c distance (infinite) blocks the second merge.
	groups := groupsOf(
		[]string{"a", "b"},
		[]string{"b", "c"},
		[]string{"a", "b"},
		[]string{"b", "c"},
	)
	ps := NewPairStats(groups)
	single := NewClusterer(LinkageSingle).Cluster(ps, 2.0)
	if len(single) != 1 || single[0].Size() != 3 {
		t.Fatalf("single linkage: got %+v, want one {a,b,c} cluster", single)
	}
	complete := NewClusterer(LinkageComplete).Cluster(ps, 2.0)
	for _, c := range complete {
		if c.Contains("a") && c.Contains("c") {
			t.Fatalf("complete linkage must not bridge a and c: %+v", complete)
		}
	}
}

func TestAverageLinkage(t *testing.T) {
	groups := groupsOf(
		[]string{"a", "b"},
		[]string{"b", "c"},
		[]string{"a", "c"},
	)
	ps := NewPairStats(groups)
	// All pairs have corr = 1/2+1/2 = 1, distance 1. Average linkage merges
	// everything at threshold 1.
	clusters := NewClusterer(LinkageAverage).Cluster(ps, 1.0)
	if len(clusters) != 1 || clusters[0].Size() != 3 {
		t.Fatalf("average linkage: got %+v, want one cluster of 3", clusters)
	}
}

func TestNewClustererFallback(t *testing.T) {
	if got := NewClusterer(Linkage(99)).Linkage(); got != LinkageComplete {
		t.Errorf("unknown linkage fell back to %v, want complete", got)
	}
}

func TestDendrogramCutMonotone(t *testing.T) {
	groups := groupsOf(
		[]string{"a", "b", "c"},
		[]string{"a", "b"},
		[]string{"c", "d"},
		[]string{"d"},
	)
	d := NewClusterer(LinkageComplete).Dendrogram(NewPairStats(groups))
	prev := math.MaxInt
	for _, th := range []float64{0.4, 0.5, 0.75, 1.0, 2.0, 10.0} {
		n := len(d.Cut(th))
		if n > prev {
			t.Fatalf("cluster count increased from %d to %d as threshold grew to %v", prev, n, th)
		}
		prev = n
	}
}

func TestDendrogramMergeHeightsMonotone(t *testing.T) {
	groups := groupsOf(
		[]string{"a", "b", "c", "d"},
		[]string{"a", "b"},
		[]string{"a", "b"},
		[]string{"c", "d"},
		[]string{"a", "c"},
	)
	for _, link := range []Linkage{LinkageComplete, LinkageSingle, LinkageAverage} {
		d := NewClusterer(link).Dendrogram(NewPairStats(groups))
		// Within the single component of this graph, heights must be
		// non-decreasing for monotone linkages.
		var prev float64
		for i, m := range d.Merges() {
			if m.Height < prev-1e-12 {
				t.Errorf("%v linkage: merge %d height %v < previous %v", link, i, m.Height, prev)
			}
			prev = m.Height
		}
	}
}

func TestSortForRecovery(t *testing.T) {
	clusters := []Cluster{
		{Keys: []string{"frequent"}, ModCount: 100, LastModified: t0},
		{Keys: []string{"rare"}, ModCount: 2, LastModified: t0},
		{Keys: []string{"rare-recent"}, ModCount: 2, LastModified: t0.Add(time.Hour)},
	}
	SortForRecovery(clusters)
	if clusters[0].Keys[0] != "rare-recent" {
		t.Errorf("first = %v, want rare-recent (low count, most recent)", clusters[0].Keys)
	}
	if clusters[2].Keys[0] != "frequent" {
		t.Errorf("last = %v, want frequent", clusters[2].Keys)
	}
}

func TestMultiKeyAndAverageSize(t *testing.T) {
	clusters := []Cluster{
		{Keys: []string{"a", "b", "c"}},
		{Keys: []string{"d"}},
		{Keys: []string{"e", "f"}},
	}
	multi := MultiKey(clusters)
	if len(multi) != 2 {
		t.Fatalf("MultiKey = %d clusters, want 2", len(multi))
	}
	if got := AverageSize(clusters); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("AverageSize = %v, want 2", got)
	}
	if got := AverageSize(nil); got != 0 {
		t.Errorf("AverageSize(nil) = %v, want 0", got)
	}
}

// Property: Cut always yields a partition — every key in exactly one
// cluster, regardless of threshold, linkage, or input shape.
func TestCutPartitionProperty(t *testing.T) {
	prop := func(seed uint8, thresholdSel uint8, linkSel uint8) bool {
		// Build a deterministic but varied group structure from the seed.
		n := int(seed%5) + 2
		var lists [][]string
		keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6"}
		for i := 0; i < n*3; i++ {
			a := keys[(i+int(seed))%len(keys)]
			b := keys[(i*2+int(seed)+1)%len(keys)]
			if a == b {
				lists = append(lists, []string{a})
			} else {
				lists = append(lists, []string{a, b})
			}
		}
		ps := NewPairStats(groupsOf(lists...))
		links := []Linkage{LinkageComplete, LinkageSingle, LinkageAverage}
		threshold := []float64{0.5, 0.75, 1, 2, math.Inf(1)}[thresholdSel%5]
		clusters := NewClusterer(links[linkSel%3]).Cluster(ps, threshold)
		seen := make(map[string]int)
		for _, c := range clusters {
			for _, k := range c.Keys {
				seen[k]++
			}
		}
		if len(seen) != ps.NumKeys() {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a smaller threshold never produces larger clusters (threshold
// monotonicity underlies the paper's tuning advice).
func TestThresholdMonotonicityProperty(t *testing.T) {
	prop := func(seed uint8) bool {
		keys := []string{"a", "b", "c", "d", "e"}
		var lists [][]string
		for i := 0; i < 12; i++ {
			x := keys[(i+int(seed))%5]
			y := keys[(i*3+int(seed)/2)%5]
			if x == y {
				lists = append(lists, []string{x})
			} else {
				lists = append(lists, []string{x, y})
			}
		}
		d := NewClusterer(LinkageComplete).Dendrogram(NewPairStats(lists2groups(lists)))
		small := d.Cut(0.5)
		large := d.Cut(1.5)
		return len(small) >= len(large)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func lists2groups(lists [][]string) []trace.Group {
	return groupsOf(lists...)
}

// Regression: a duplicate key inside one co-modification group must not
// double-count its episode, insert a self-pair, or inflate correlations.
func TestPairStatsDuplicateKeysInGroup(t *testing.T) {
	ps := NewPairStats(groupsOf(
		[]string{"a", "b", "a"},
		[]string{"b", "a", "b", "a"},
		[]string{"a", "b"},
	))
	if got := ps.Episodes("a"); got != 3 {
		t.Errorf("Episodes(a) = %d, want 3", got)
	}
	if got := ps.Episodes("b"); got != 3 {
		t.Errorf("Episodes(b) = %d, want 3", got)
	}
	if got := ps.CoEpisodes("a", "b"); got != 3 {
		t.Errorf("CoEpisodes(a,b) = %d, want 3", got)
	}
	ps.co.forEach(func(k uint64, _ int) {
		if lo, hi := unpackPair(k); lo >= hi {
			t.Errorf("self- or misordered pair (%d,%d) in co-modification counts", lo, hi)
		}
	})
	// a and b are always modified together: the correlation must be the
	// clean maximum of 2, and the pair must cluster at the default
	// threshold.
	if corr := ps.KeyCorrelation("a", "b"); math.Abs(corr-2) > 1e-12 {
		t.Errorf("KeyCorrelation(a,b) = %v, want 2", corr)
	}
	clusters := NewClusterer(LinkageComplete).Cluster(ps, DefaultThreshold)
	if len(clusters) != 1 || clusters[0].Size() != 2 {
		t.Fatalf("got %+v, want one {a,b} cluster", clusters)
	}
}
