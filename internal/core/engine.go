package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ocasta/internal/trace"
)

// EngineConfig tunes a streaming analytics engine. The zero value selects
// the paper's defaults (1-second anchored window, complete linkage,
// correlation threshold 2) with the default reorder horizon.
type EngineConfig struct {
	// Window is the sliding co-modification window. 0 selects the paper's
	// 1-second default; a negative value selects the true zero-second
	// window (writes group only on identical timestamps).
	Window time.Duration
	// Mode selects anchored or chained grouping (default anchored).
	Mode trace.GroupMode
	// Horizon is how far out of per-app chronological order pushed events
	// may arrive and still be windowed exactly; < 0 selects
	// trace.DefaultHorizon, 0 requires in-order arrival.
	Horizon time.Duration
	// Linkage is the HAC criterion (default complete/maximum linkage).
	Linkage Linkage
	// Threshold is the correlation threshold in (0, 2] (default 2).
	Threshold float64
	// Parallelism bounds how many dirty components are reclustered
	// concurrently; <= 0 uses all CPUs.
	Parallelism int
	// MaxFutureSkew, when positive, bounds how far beyond the wall clock
	// an event timestamp may advance the windower's watermark (see
	// trace.StreamWindower.SetFutureLimit): one hostile far-future
	// timestamp is quarantined instead of permanently poisoning the
	// stream. Enable it only when writers stamp events with real time
	// (ttkvd does); leave it zero when replaying historical traces.
	MaxFutureSkew time.Duration
}

func (c EngineConfig) normalized() EngineConfig {
	switch {
	case c.Window == 0:
		c.Window = trace.DefaultWindow
	case c.Window < 0:
		c.Window = 0
	}
	if c.Horizon < 0 {
		c.Horizon = trace.DefaultHorizon
	}
	if c.Threshold <= 0 || c.Threshold > 2 {
		c.Threshold = 2
	}
	return c
}

// clusterSnapshot is one published clustering, immutable once stored.
type clusterSnapshot struct {
	clusters []Cluster
	version  uint64
}

// Engine is the streaming analytics engine: it consumes a live write
// stream event by event (typically as a ttkv store's StatsObserver),
// windows it incrementally, folds closed groups into incremental
// PairStats, and reclusters on demand — re-running HAC only on the
// connected components whose statistics changed since the last cut and
// splicing cached clusters for the untouched ones, so periodic
// reclustering of a mostly-stable key universe costs a small fraction of
// a full batch run.
//
// The contract is equivalence with bounded staleness: after Flush, the
// next Recluster's output is byte-identical to running the batch pipeline
// (Windower.GroupTrace → NewPairStats → Clusterer.Cluster) over the same
// event set. Mid-stream, the clustering lags the write stream by at most
// one still-open window per app plus the reorder horizon plus the
// recluster interval.
//
// Push/Observe/Recluster/Correlation are safe for concurrent use;
// Clusters and Version read the last published snapshot without taking
// the engine lock.
type Engine struct {
	cfg       EngineConfig
	clusterer *Clusterer
	maxDist   float64

	// Incoming events are staged in a double-buffered pending queue
	// guarded by its own tiny lock, so store writers calling
	// ObserveWrite never block behind a running recluster (which holds
	// e.mu for its HAC pass); every e.mu holder drains the queue first,
	// and Push drains opportunistically (TryLock) once a batch
	// accumulates. Queue order is arrival order, so windowing semantics
	// are identical to direct pushes.
	pendMu    sync.Mutex
	pending   []trace.Event
	pendSpare []trace.Event

	mu sync.Mutex // guards sw, ps mutation, dirty state, caches
	sw *trace.StreamWindower
	ps *PairStats

	// statsMu additionally brackets every mutation of ps/dirty (all of
	// which happen inside drainLocked, under mu). Correlation-style
	// readers take only the read side, so they proceed concurrently with
	// a long recluster HAC pass (which holds mu but never mutates stats
	// while clustering) instead of queueing behind it.
	statsMu sync.RWMutex

	dirty    []bool // per interned key id: stats changed since last cut
	dirtyIDs []int  // set bits of dirty, for cheap reset

	// Component cache: adjacency and components are invalidated only when
	// the key universe or the distinct-pair set grows (count increments
	// on existing pairs change neither), so a recluster over a stable
	// graph skips both rebuilds.
	adj       [][]int
	comps     [][]int
	adjKeys   int
	adjPairs  int
	cache     map[string][]Cluster // component (by smallest key) -> clusters
	published atomic.Pointer[clusterSnapshot]
}

// NewEngine returns an empty streaming analytics engine.
func NewEngine(cfg EngineConfig) *Engine {
	cfg = cfg.normalized()
	e := &Engine{
		cfg:       cfg,
		clusterer: NewClusterer(cfg.Linkage).WithParallelism(cfg.Parallelism),
		maxDist:   ThresholdFromCorrelation(cfg.Threshold),
		ps:        NewPairStats(nil),
		cache:     make(map[string][]Cluster),
	}
	e.sw = trace.NewStreamWindower(cfg.Window, cfg.Mode, cfg.Horizon, e.onGroup)
	if cfg.MaxFutureSkew > 0 {
		e.sw.SetFutureLimit(cfg.MaxFutureSkew, time.Now)
	}
	e.published.Store(&clusterSnapshot{})
	return e
}

// Config returns the engine's normalized configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// onGroup folds one closed group into the statistics and marks its keys
// dirty. Called by the windower with e.mu held (every windower call site
// is under the lock).
func (e *Engine) onGroup(g *trace.Group) {
	e.ps.Add(*g)
	for _, k := range g.Keys {
		id := e.ps.index[k]
		for id >= len(e.dirty) {
			e.dirty = append(e.dirty, false)
		}
		if !e.dirty[id] {
			e.dirty[id] = true
			e.dirtyIDs = append(e.dirtyIDs, id)
		}
	}
}

// pendingDrainBatch is how many staged events accumulate before Push
// tries to drain them itself; below it, draining is left to the next
// e.mu holder. Keeps the staging buffer small without Push ever blocking
// on a recluster in progress.
const pendingDrainBatch = 4096

// Push feeds one trace event into the engine. Reads are ignored. Push
// never blocks behind a running recluster: the event is staged and
// folded in by the next lock holder.
func (e *Engine) Push(ev trace.Event) {
	e.pendMu.Lock()
	e.pending = append(e.pending, ev)
	n := len(e.pending)
	e.pendMu.Unlock()
	if n >= pendingDrainBatch && e.mu.TryLock() {
		e.drainLocked()
		e.mu.Unlock()
	}
}

// drainLocked feeds staged events into the windower in arrival order.
// Caller holds e.mu.
func (e *Engine) drainLocked() {
	for {
		e.pendMu.Lock()
		batch := e.pending
		e.pending = e.pendSpare[:0]
		e.pendMu.Unlock()
		if len(batch) == 0 {
			return
		}
		// The windower's emit callback (onGroup) mutates ps and the dirty
		// set; bracket the fold so lock-free stat readers see a
		// consistent view.
		e.statsMu.Lock()
		for i := range batch {
			e.sw.Push(batch[i])
		}
		e.statsMu.Unlock()
		clear(batch) // release string references before reuse
		e.pendSpare = batch[:0]
	}
}

// ObserveWrite feeds one store mutation into the engine; it implements
// the ttkv store's StatsObserver hook. Store writes carry no application
// identity, so the whole store is windowed as one stream.
func (e *Engine) ObserveWrite(key string, t time.Time, deleted bool) {
	op := trace.OpWrite
	if deleted {
		op = trace.OpDelete
	}
	e.Push(trace.Event{Time: t, Op: op, Key: key})
}

// AdvanceTo declares a watermark (see trace.StreamWindower.AdvanceTo):
// groups that can no longer grow are closed and folded in. Drive it from
// a wall clock only when writers stamp events with real time.
func (e *Engine) AdvanceTo(t time.Time) {
	e.mu.Lock()
	e.drainLocked()
	e.sw.AdvanceTo(t)
	e.mu.Unlock()
}

// Flush closes every open group and folds it in, finishing the stream
// (the engine remains usable; subsequent events open fresh groups).
func (e *Engine) Flush() {
	e.mu.Lock()
	e.drainLocked()
	e.sw.Flush()
	e.mu.Unlock()
}

// Clusters returns the most recently published clustering (never nil,
// possibly empty before the first Recluster). The returned slice is
// shared and must not be mutated.
func (e *Engine) Clusters() []Cluster {
	return e.published.Load().clusters
}

// Version returns the publish counter of the current snapshot: it
// increments on every Recluster, so pollers can detect change cheaply.
func (e *Engine) Version() uint64 {
	return e.published.Load().version
}

// Snapshot returns the published clustering and its version as one
// consistent pair (a Clusters call followed by a Version call could
// straddle a concurrent publish and pair old clusters with a new
// version). The slice is shared and must not be mutated.
func (e *Engine) Snapshot() ([]Cluster, uint64) {
	s := e.published.Load()
	return s.clusters, s.version
}

// Correlation returns the live pairwise correlation of two keys,
// reflecting every group folded in so far (no recluster required). It
// reads the statistics without taking the engine lock, so it answers
// immediately even while a recluster's HAC pass is running; events still
// staged in the pending queue (at most one drain batch or recluster
// interval behind) are not yet reflected.
func (e *Engine) Correlation(a, b string) float64 {
	e.statsMu.RLock()
	defer e.statsMu.RUnlock()
	return e.ps.KeyCorrelation(a, b)
}

// NumKeys returns how many distinct keys the engine has seen in closed
// groups (like Correlation, pending staged events are not yet counted).
func (e *Engine) NumKeys() int {
	e.statsMu.RLock()
	defer e.statsMu.RUnlock()
	return e.ps.NumKeys()
}

// NumGroups returns how many co-modification episodes have been folded in
// (like Correlation, pending staged events are not yet counted).
func (e *Engine) NumGroups() int {
	e.statsMu.RLock()
	defer e.statsMu.RUnlock()
	return e.ps.NumGroups()
}

// Recluster recomputes the clustering over every group folded in so far
// and publishes it. Only connected components containing a dirty key are
// re-run through HAC; clean components reuse their cached clusters
// verbatim (their statistics are provably unchanged: any group touching a
// member key marks it dirty). The result is identical to a full batch
// Clusterer.Cluster over the same statistics.
func (e *Engine) Recluster() []Cluster {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.drainLocked()

	ps := e.ps
	ps.ensureSorted()
	// Rebuild the graph only if it could have changed: a new key or a new
	// distinct pair. Count increments on existing pairs alter neither
	// adjacency nor components.
	if e.adj == nil || e.adjKeys != ps.NumKeys() || e.adjPairs != ps.NumPairs() {
		e.adj = ps.adjacency()
		e.comps = ps.components(e.adj)
		e.adjKeys = ps.NumKeys()
		e.adjPairs = ps.NumPairs()
	}

	type job struct {
		comp []int
		key  string
		out  []Cluster
	}
	var (
		clusters = make([]Cluster, 0, len(e.comps))
		jobs     []*job
		newCache = make(map[string][]Cluster, len(e.comps))
	)
	for _, comp := range e.comps {
		compKey := ps.keyBySorted(comp[0])
		if cached, ok := e.cache[compKey]; ok && !e.compDirty(comp) {
			newCache[compKey] = cached
			clusters = append(clusters, cached...)
			continue
		}
		jobs = append(jobs, &job{comp: comp, key: compKey})
	}

	parallelFor(len(jobs), e.clusterer.workerCount(), func(t int) {
		j := jobs[t]
		j.out = e.clusterer.clusterComponent(ps, j.comp, e.adj, e.maxDist)
	})
	for _, j := range jobs {
		newCache[j.key] = j.out
		clusters = append(clusters, j.out...)
	}
	e.cache = newCache

	// Reset dirty state.
	for _, id := range e.dirtyIDs {
		e.dirty[id] = false
	}
	e.dirtyIDs = e.dirtyIDs[:0]

	// First keys are unique across clusters (clusters partition the key
	// universe), so this order is total and matches Dendrogram.Cut's.
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Keys[0] < clusters[j].Keys[0] })

	prev := e.published.Load()
	e.published.Store(&clusterSnapshot{clusters: clusters, version: prev.version + 1})
	return clusters
}

// Reset discards every event, statistic, and cached clustering, returning
// the engine to its freshly constructed state (configuration kept, publish
// counter advanced so pollers see the change). A read replica calls it on
// full resync: the new primary's snapshot replays through the observer
// from scratch, and stale statistics must not double-count it.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pendMu.Lock()
	e.pending = e.pending[:0]
	e.pendMu.Unlock()
	e.statsMu.Lock()
	e.ps = NewPairStats(nil)
	e.dirty = nil
	e.dirtyIDs = nil
	e.statsMu.Unlock()
	e.sw = trace.NewStreamWindower(e.cfg.Window, e.cfg.Mode, e.cfg.Horizon, e.onGroup)
	if e.cfg.MaxFutureSkew > 0 {
		e.sw.SetFutureLimit(e.cfg.MaxFutureSkew, time.Now)
	}
	e.adj, e.comps = nil, nil
	e.adjKeys, e.adjPairs = 0, 0
	e.cache = make(map[string][]Cluster)
	prev := e.published.Load()
	e.published.Store(&clusterSnapshot{version: prev.version + 1})
}

// compDirty reports whether any member of the (sorted-space) component
// has dirty statistics.
func (e *Engine) compDirty(comp []int) bool {
	for _, i := range comp {
		id := e.ps.perm[i]
		if id < len(e.dirty) && e.dirty[id] {
			return true
		}
	}
	return false
}
