package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ocasta/internal/trace"
)

// mergeTestGroups builds a deterministic stream of co-modification groups
// over a keyspace with real cluster structure: a handful of correlated key
// families plus noise singletons.
func mergeTestGroups(n int, seed int64) []trace.Group {
	rng := rand.New(rand.NewSource(seed))
	base := time.Unix(0, 0)
	families := [][]string{
		{"net/ip", "net/mask", "net/gw"},
		{"db/host", "db/port"},
		{"ui/theme", "ui/font", "ui/size", "ui/lang"},
	}
	groups := make([]trace.Group, 0, n)
	for i := 0; i < n; i++ {
		end := base.Add(time.Duration(i) * time.Second)
		var keys []string
		switch rng.Intn(4) {
		case 0, 1:
			fam := families[rng.Intn(len(families))]
			keys = append(keys, fam[:1+rng.Intn(len(fam))]...)
		case 2:
			fam := families[rng.Intn(len(families))]
			keys = append(keys, fam...)
			keys = append(keys, fmt.Sprintf("noise/%d", rng.Intn(6)))
		default:
			keys = []string{fmt.Sprintf("noise/%d", rng.Intn(6))}
		}
		groups = append(groups, trace.Group{Keys: keys, Start: end.Add(-time.Second), End: end})
	}
	return groups
}

// assertStatsEqual checks every clustering-facing accessor of two
// accumulators for equality, including the full HAC output.
func assertStatsEqual(t *testing.T, want, got *PairStats) {
	t.Helper()
	if g, w := got.NumKeys(), want.NumKeys(); g != w {
		t.Fatalf("NumKeys = %d, want %d", g, w)
	}
	if g, w := got.NumPairs(), want.NumPairs(); g != w {
		t.Fatalf("NumPairs = %d, want %d", g, w)
	}
	if g, w := got.NumGroups(), want.NumGroups(); g != w {
		t.Fatalf("NumGroups = %d, want %d", g, w)
	}
	wantKeys, gotKeys := want.Keys(), got.Keys()
	if !reflect.DeepEqual(wantKeys, gotKeys) {
		t.Fatalf("Keys = %v, want %v", gotKeys, wantKeys)
	}
	for i, a := range wantKeys {
		if g, w := got.Episodes(a), want.Episodes(a); g != w {
			t.Fatalf("Episodes(%q) = %d, want %d", a, g, w)
		}
		for _, b := range wantKeys[i+1:] {
			if g, w := got.CoEpisodes(a, b), want.CoEpisodes(a, b); g != w {
				t.Fatalf("CoEpisodes(%q,%q) = %d, want %d", a, b, g, w)
			}
			if g, w := got.KeyCorrelation(a, b), want.KeyCorrelation(a, b); g != w {
				t.Fatalf("KeyCorrelation(%q,%q) = %v, want %v", a, b, g, w)
			}
		}
	}
	cl := NewClusterer(LinkageComplete)
	wantClusters := cl.Cluster(want, DefaultThreshold)
	gotClusters := cl.Cluster(got, DefaultThreshold)
	if !reflect.DeepEqual(wantClusters, gotClusters) {
		t.Fatalf("clusters diverge:\n got %+v\nwant %+v", gotClusters, wantClusters)
	}
}

// TestMergeEqualsBatch partitions a group stream across several
// accumulators, merges them, and demands the result be indistinguishable
// from one accumulator fed everything — counts, correlations, and the
// clustering itself.
func TestMergeEqualsBatch(t *testing.T) {
	groups := mergeTestGroups(400, 7)
	want := NewPairStats(groups)

	for _, parts := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			shards := make([]*PairStats, parts)
			for i := range shards {
				shards[i] = NewPairStats(nil)
			}
			// Round-robin partition: every shard sees a different key
			// interning order than the batch accumulator.
			for i, g := range groups {
				shards[i%parts].Add(g)
			}
			merged := shards[0]
			for _, s := range shards[1:] {
				merged.Merge(s)
			}
			assertStatsEqual(t, want, merged)
		})
	}
}

// TestMergeIntoLiveAccumulator interleaves Merge with further Add calls:
// merging must not corrupt subsequent accumulation, and the sorted-id
// permutation must be invalidated by the merged-in keys.
func TestMergeIntoLiveAccumulator(t *testing.T) {
	groups := mergeTestGroups(300, 11)
	want := NewPairStats(groups)

	a, b := NewPairStats(nil), NewPairStats(nil)
	for _, g := range groups[:100] {
		a.Add(g)
	}
	// Force a's permutation to be built before the merge grows the
	// universe, so staleness detection is exercised.
	_ = a.Keys()
	for _, g := range groups[100:200] {
		b.Add(g)
	}
	a.Merge(b)
	for _, g := range groups[200:] {
		a.Add(g)
	}
	assertStatsEqual(t, want, a)
}

// TestMergeEmptyAndNil checks the degenerate merges are no-ops.
func TestMergeEmptyAndNil(t *testing.T) {
	groups := mergeTestGroups(50, 3)
	want := NewPairStats(groups)
	got := NewPairStats(groups)
	got.Merge(nil)
	got.Merge(NewPairStats(nil))
	assertStatsEqual(t, want, got)

	empty := NewPairStats(nil)
	empty.Merge(want)
	assertStatsEqual(t, want, empty)
}

// TestCloneIndependence verifies Clone is a deep copy: mutating the
// original afterwards must not leak into the clone.
func TestCloneIndependence(t *testing.T) {
	groups := mergeTestGroups(120, 5)
	orig := NewPairStats(groups[:80])
	want := NewPairStats(groups[:80])
	clone := orig.Clone()
	for _, g := range groups[80:] {
		orig.Add(g)
	}
	assertStatsEqual(t, want, clone)
}

// TestEngineMergeStats feeds half a workload through one engine as events
// and merges the other half's statistics in from a peer accumulator; after
// Flush+Recluster the published clustering must match a single engine that
// saw the union. Groups are constructed directly so the event/group split
// is exact (every group observed whole by exactly one side).
func TestEngineMergeStats(t *testing.T) {
	groups := mergeTestGroups(200, 13)

	full := NewPairStats(groups)
	wantClusters := NewClusterer(LinkageComplete).Cluster(full, DefaultThreshold)

	e := NewEngine(EngineConfig{Window: -1}) // exact-timestamp grouping
	for _, g := range groups[:100] {
		// All keys of a group share one timestamp, so the zero-width
		// window reconstructs the groups exactly.
		for _, k := range g.Keys {
			e.Push(trace.Event{Time: g.End, Op: trace.OpWrite, Key: k})
		}
	}
	peer := NewPairStats(groups[100:])
	e.MergeStats(peer)
	e.Flush()
	got := e.Recluster()
	if !reflect.DeepEqual(wantClusters, got) {
		t.Fatalf("merged engine clusters diverge:\n got %+v\nwant %+v", got, wantClusters)
	}

	// The merged statistics must also answer correlations globally.
	if g, w := e.Correlation("net/ip", "net/mask"), full.KeyCorrelation("net/ip", "net/mask"); g != w {
		t.Fatalf("Correlation = %v, want %v", g, w)
	}
}
