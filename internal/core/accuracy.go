package core

import "sort"

// Verdict classifies one extracted cluster against ground truth.
type Verdict uint8

const (
	// VerdictExact means the cluster is exactly one ground-truth group.
	VerdictExact Verdict = iota + 1
	// VerdictUndersized means every member is related (all drawn from one
	// ground-truth group) but at least one related setting is missing.
	VerdictUndersized
	// VerdictOversized means the cluster contains at least one setting
	// unrelated to the others (it spans ground-truth groups or includes an
	// independent setting).
	VerdictOversized
)

// String returns the canonical name of the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictExact:
		return "exact"
	case VerdictUndersized:
		return "undersized"
	case VerdictOversized:
		return "oversized"
	default:
		return "unknown"
	}
}

// GroundTruth is the reference partition of an application's related
// configuration settings: each group lists settings that all depend on each
// other; settings absent from every group are independent.
type GroundTruth struct {
	groupOf map[string]int
	sizes   []int
}

// NewGroundTruth builds ground truth from related-setting groups. A setting
// may appear in at most one group; later duplicates are ignored.
func NewGroundTruth(groups [][]string) *GroundTruth {
	gt := &GroundTruth{groupOf: make(map[string]int)}
	for _, g := range groups {
		id := len(gt.sizes)
		size := 0
		for _, key := range g {
			if _, dup := gt.groupOf[key]; dup {
				continue
			}
			gt.groupOf[key] = id
			size++
		}
		gt.sizes = append(gt.sizes, size)
	}
	return gt
}

// Related reports whether two settings belong to the same ground-truth
// group.
func (gt *GroundTruth) Related(a, b string) bool {
	ga, ok := gt.groupOf[a]
	if !ok {
		return false
	}
	gb, ok := gt.groupOf[b]
	return ok && ga == gb
}

// GroupSize returns the size of the group containing key (0 when the key is
// independent).
func (gt *GroundTruth) GroupSize(key string) int {
	if id, ok := gt.groupOf[key]; ok {
		return gt.sizes[id]
	}
	return 0
}

// Classify labels a multi-key cluster against the ground truth, mirroring
// the paper's manual inspection: a cluster is correctly identified iff
// there is a dependency relationship among every pair of its settings
// (exact or undersized); otherwise it is oversized.
func (gt *GroundTruth) Classify(c *Cluster) Verdict {
	if len(c.Keys) == 0 {
		return VerdictOversized
	}
	first, ok := gt.groupOf[c.Keys[0]]
	if !ok {
		// An independent setting clustered with anything is unrelated to it.
		return VerdictOversized
	}
	for _, key := range c.Keys[1:] {
		id, ok := gt.groupOf[key]
		if !ok || id != first {
			return VerdictOversized
		}
	}
	if len(c.Keys) == gt.sizes[first] {
		return VerdictExact
	}
	return VerdictUndersized
}

// Report aggregates cluster-accuracy results for one application, the way
// each row of Table II reports them.
type Report struct {
	App string
	// Keys is the number of distinct settings the application modified.
	Keys int
	// Clusters is the total number of clusters extracted.
	Clusters int
	// MultiKey is the number of clusters with more than one setting.
	MultiKey int
	// Correct counts multi-key clusters in which every pair of settings is
	// related (exact or undersized), the paper's "correctly identified".
	Correct    int
	Exact      int
	Undersized int
	Oversized  int
}

// Accuracy returns correctly identified multi-key clusters over all
// multi-key clusters, in [0,1]. Applications with no multi-key clusters
// (like Eye of GNOME in the paper) report ok=false, shown as N/A.
func (r *Report) Accuracy() (acc float64, ok bool) {
	if r.MultiKey == 0 {
		return 0, false
	}
	return float64(r.Correct) / float64(r.MultiKey), true
}

// Evaluate scores extracted clusters against ground truth for one
// application.
func Evaluate(app string, clusters []Cluster, gt *GroundTruth) Report {
	rep := Report{App: app, Clusters: len(clusters)}
	keys := make(map[string]struct{})
	for i := range clusters {
		c := &clusters[i]
		for _, k := range c.Keys {
			keys[k] = struct{}{}
		}
		if c.Size() <= 1 {
			continue
		}
		rep.MultiKey++
		switch gt.Classify(c) {
		case VerdictExact:
			rep.Exact++
			rep.Correct++
		case VerdictUndersized:
			rep.Undersized++
			rep.Correct++
		default:
			rep.Oversized++
		}
	}
	rep.Keys = len(keys)
	return rep
}

// Overall combines per-application reports into the paper's two aggregate
// accuracy figures: the overall ratio (total correct / total multi-key,
// 88.6% in the paper) and the per-application mean (72.3% in the paper,
// averaging only applications that have multi-key clusters).
func Overall(reports []Report) (overall, mean float64) {
	var correct, multi int
	var sum float64
	var apps int
	for i := range reports {
		r := &reports[i]
		correct += r.Correct
		multi += r.MultiKey
		if acc, ok := r.Accuracy(); ok {
			sum += acc
			apps++
		}
	}
	if multi > 0 {
		overall = float64(correct) / float64(multi)
	}
	if apps > 0 {
		mean = sum / float64(apps)
	}
	return overall, mean
}

// SortReports orders reports by application name for stable presentation.
func SortReports(reports []Report) {
	sort.Slice(reports, func(i, j int) bool { return reports[i].App < reports[j].App })
}
