package core

import (
	"fmt"
	"testing"

	"ocasta/internal/trace"
)

// syntheticComponents builds pair statistics whose co-modification graph
// has ncomp connected components of k keys each, every component sparse
// (ring plus chords), mimicking a production-scale key universe where most
// key pairs are never modified together.
func syntheticComponents(ncomp, k int) *PairStats {
	var lists [][]string
	for c := 0; c < ncomp; c++ {
		key := func(i int) string { return fmt.Sprintf("c%02d-key%05d", c, ((i%k)+k)%k) }
		for i := 0; i < k; i++ {
			lists = append(lists, []string{key(i), key(i + 1)})
			if i%3 == 0 {
				lists = append(lists, []string{key(i), key(i + 1), key(i + 2)})
			}
			if i%5 == 0 {
				lists = append(lists, []string{key(i), key(i + 7)})
			}
		}
	}
	groups := make([]trace.Group, len(lists))
	for i, keys := range lists {
		ts := t0.Add(0) // one shared stamp: the bench measures clustering only
		groups[i] = trace.Group{Start: ts, End: ts, Keys: keys}
	}
	return NewPairStats(groups)
}

// BenchmarkClusterLargeComponent contrasts the nearest-neighbour-chain
// clusterer (with parallel component clustering enabled) against the naive
// closest-pair reference on large sparse components. The chain path is
// O(k²) per component with O(k) scratch per step; the naive path re-scans
// a dense k x k matrix per merge, O(k³). The naive variant is capped at
// k = 2000 to keep one iteration affordable.
func BenchmarkClusterLargeComponent(b *testing.B) {
	const ncomp = 4
	for _, k := range []int{500, 2000, 5000} {
		ps := syntheticComponents(ncomp, k)
		b.Run(fmt.Sprintf("chain/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clusters := NewClusterer(LinkageComplete).WithParallelism(0).Cluster(ps, 1.0)
				if len(clusters) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
		if k > 2000 {
			continue
		}
		b.Run(fmt.Sprintf("naive/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clusters := NewClusterer(LinkageComplete).clusterNaive(ps, 1.0)
				if len(clusters) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

// BenchmarkClusterLargeComponentLinkages measures the chain path per
// linkage at k = 2000 (the sparse single-linkage fold is a union, not an
// intersection, so its cost profile differs).
func BenchmarkClusterLargeComponentLinkages(b *testing.B) {
	ps := syntheticComponents(2, 2000)
	for _, link := range []Linkage{LinkageComplete, LinkageSingle, LinkageAverage} {
		b.Run(link.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewClusterer(link).WithParallelism(0).Cluster(ps, 1.0)
			}
		})
	}
}
