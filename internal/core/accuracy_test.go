package core

import (
	"math"
	"testing"
)

func gt2(groups ...[]string) *GroundTruth { return NewGroundTruth(groups) }

func TestVerdictString(t *testing.T) {
	if VerdictExact.String() != "exact" || VerdictUndersized.String() != "undersized" ||
		VerdictOversized.String() != "oversized" || Verdict(9).String() != "unknown" {
		t.Error("verdict names wrong")
	}
}

func TestGroundTruthRelated(t *testing.T) {
	gt := gt2([]string{"max", "item1", "item2"}, []string{"x", "y"})
	if !gt.Related("max", "item1") {
		t.Error("max and item1 should be related")
	}
	if gt.Related("max", "x") {
		t.Error("max and x are in different groups")
	}
	if gt.Related("max", "independent") {
		t.Error("independent key is unrelated to everything")
	}
	if gt.GroupSize("max") != 3 || gt.GroupSize("x") != 2 || gt.GroupSize("independent") != 0 {
		t.Error("GroupSize wrong")
	}
}

func TestGroundTruthDuplicateKeyIgnored(t *testing.T) {
	gt := gt2([]string{"a", "b"}, []string{"b", "c"})
	// b stays in the first group; the second group has effective size 1.
	if !gt.Related("a", "b") {
		t.Error("b must remain in its first group")
	}
	if gt.Related("b", "c") {
		t.Error("duplicate b must not join the second group")
	}
	if gt.GroupSize("c") != 1 {
		t.Errorf("GroupSize(c) = %d, want 1", gt.GroupSize("c"))
	}
}

func TestClassify(t *testing.T) {
	gt := gt2([]string{"a", "b", "c"}, []string{"x", "y"})
	tests := []struct {
		name string
		keys []string
		want Verdict
	}{
		{"exact", []string{"a", "b", "c"}, VerdictExact},
		{"undersized", []string{"a", "b"}, VerdictUndersized},
		{"oversized spans groups", []string{"a", "x"}, VerdictOversized},
		{"oversized includes independent", []string{"a", "b", "z"}, VerdictOversized},
		{"independent first", []string{"z", "a"}, VerdictOversized},
		{"empty", nil, VerdictOversized},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Cluster{Keys: tt.keys}
			if got := gt.Classify(&c); got != tt.want {
				t.Errorf("Classify(%v) = %v, want %v", tt.keys, got, tt.want)
			}
		})
	}
}

func TestEvaluate(t *testing.T) {
	gt := gt2([]string{"a", "b", "c"}, []string{"x", "y"})
	clusters := []Cluster{
		{Keys: []string{"a", "b", "c"}}, // exact
		{Keys: []string{"x", "y"}},      // exact
		{Keys: []string{"a", "x"}},      // oversized (counts keys again, fine)
		{Keys: []string{"solo"}},        // singleton, not scored
	}
	rep := Evaluate("word", clusters, gt)
	if rep.App != "word" {
		t.Errorf("App = %q", rep.App)
	}
	if rep.Clusters != 4 || rep.MultiKey != 3 {
		t.Errorf("Clusters/MultiKey = %d/%d, want 4/3", rep.Clusters, rep.MultiKey)
	}
	if rep.Correct != 2 || rep.Exact != 2 || rep.Oversized != 1 || rep.Undersized != 0 {
		t.Errorf("verdict counts = %+v", rep)
	}
	if rep.Keys != 6 {
		t.Errorf("Keys = %d, want 6", rep.Keys)
	}
	acc, ok := rep.Accuracy()
	if !ok || math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Errorf("Accuracy = %v/%v, want 2/3", acc, ok)
	}
}

func TestAccuracyNA(t *testing.T) {
	rep := Evaluate("eog", []Cluster{{Keys: []string{"only"}}}, gt2())
	if _, ok := rep.Accuracy(); ok {
		t.Error("no multi-key clusters must report N/A")
	}
}

func TestOverall(t *testing.T) {
	reports := []Report{
		{MultiKey: 8, Correct: 8},  // 100%
		{MultiKey: 2, Correct: 1},  // 50%
		{MultiKey: 0, Correct: 0},  // N/A, excluded from mean
		{MultiKey: 10, Correct: 9}, // 90%
	}
	overall, mean := Overall(reports)
	wantOverall := 18.0 / 20.0
	wantMean := (1.0 + 0.5 + 0.9) / 3.0
	if math.Abs(overall-wantOverall) > 1e-12 {
		t.Errorf("overall = %v, want %v", overall, wantOverall)
	}
	if math.Abs(mean-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", mean, wantMean)
	}
}

func TestOverallEmpty(t *testing.T) {
	overall, mean := Overall(nil)
	if overall != 0 || mean != 0 {
		t.Errorf("Overall(nil) = %v,%v, want 0,0", overall, mean)
	}
}

func TestSortReports(t *testing.T) {
	reports := []Report{{App: "word"}, {App: "acrobat"}, {App: "chrome"}}
	SortReports(reports)
	if reports[0].App != "acrobat" || reports[2].App != "word" {
		t.Errorf("sorted order wrong: %v %v %v", reports[0].App, reports[1].App, reports[2].App)
	}
}

// End-to-end: the Microsoft Word MRU example from Fig 1a of the paper.
// Max Display and the Item keys are always written together when the user
// shrinks the recently-used list; an unrelated zoom setting changes alone.
func TestWordMRUScenario(t *testing.T) {
	groups := groupsOf(
		[]string{"Max Display", "Item 1", "Item 2"},
		[]string{"Max Display", "Item 1", "Item 2"},
		[]string{"zoom"},
		[]string{"zoom"},
	)
	ps := NewPairStats(groups)
	clusters := NewClusterer(LinkageComplete).Cluster(ps, DefaultThreshold)
	gt := gt2([]string{"Max Display", "Item 1", "Item 2"})
	rep := Evaluate("word", clusters, gt)
	if rep.MultiKey != 1 || rep.Exact != 1 {
		t.Fatalf("expected exactly one exact MRU cluster, got %+v (clusters %+v)", rep, clusters)
	}
}
