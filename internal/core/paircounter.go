package core

// pairCounter counts co-modification episodes per key pair. It is an
// open-addressed hash table keyed by a single uint64 packing the pair's
// two interned key ids (lo in the high word, hi in the low word, lo < hi),
// replacing the map[pairKey]int the batch pipeline used — the hottest
// allocation site of the whole analytics path: one map entry per distinct
// pair plus rehash garbage on every build. The flat table costs two
// word-sized slices, grows geometrically, and increments with one
// multiply-shift probe in the common case.
//
// lo < hi guarantees a packed key is never 0 (hi >= 1), so 0 is the empty
// slot sentinel.
type pairCounter struct {
	keys []uint64
	vals []uint32
	n    int // live entries
	mask uint64
}

// packPair packs two distinct interned key ids into the counter's key.
// Ids are bounded by the interned symbol table size, far below 2^32.
func packPair(i, j int) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// unpackPair splits a packed key back into (lo, hi).
func unpackPair(k uint64) (int, int) {
	return int(k >> 32), int(uint32(k))
}

// pairCounterMinCap keeps tiny tables from rehashing immediately.
const pairCounterMinCap = 64

// pairHash spreads packed keys over the table (Fibonacci hashing).
func pairHash(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

func newPairCounter() *pairCounter {
	return &pairCounter{
		keys: make([]uint64, pairCounterMinCap),
		vals: make([]uint32, pairCounterMinCap),
		mask: pairCounterMinCap - 1,
	}
}

// incr adds one to the pair's count, inserting it if absent.
func (pc *pairCounter) incr(k uint64) { pc.add(k, 1) }

// add folds n (> 0) occurrences of the pair into the count, inserting the
// pair if absent. It is incr's bulk form, used when merging a peer
// accumulator's counts.
func (pc *pairCounter) add(k uint64, n int) {
	i := pairHash(k) & pc.mask
	for {
		switch pc.keys[i] {
		case k:
			pc.vals[i] += uint32(n)
			return
		case 0:
			// Grow at 7/8 load: linear probing stays short and the table
			// is never more than ~15% slack at steady state.
			if pc.n+1 > len(pc.keys)-len(pc.keys)/8 {
				pc.grow()
				i = pairHash(k) & pc.mask
				for pc.keys[i] != 0 {
					i = (i + 1) & pc.mask
				}
			}
			pc.keys[i] = k
			pc.vals[i] = uint32(n)
			pc.n++
			return
		}
		i = (i + 1) & pc.mask
	}
}

// clone returns an independent deep copy of the counter.
func (pc *pairCounter) clone() *pairCounter {
	out := &pairCounter{
		keys: make([]uint64, len(pc.keys)),
		vals: make([]uint32, len(pc.vals)),
		n:    pc.n,
		mask: pc.mask,
	}
	copy(out.keys, pc.keys)
	copy(out.vals, pc.vals)
	return out
}

// get returns the pair's count, 0 if absent.
func (pc *pairCounter) get(k uint64) int {
	i := pairHash(k) & pc.mask
	for {
		switch pc.keys[i] {
		case k:
			return int(pc.vals[i])
		case 0:
			return 0
		}
		i = (i + 1) & pc.mask
	}
}

// len returns the number of distinct pairs counted.
func (pc *pairCounter) len() int { return pc.n }

// grow doubles the table and reinserts every entry.
func (pc *pairCounter) grow() {
	oldKeys, oldVals := pc.keys, pc.vals
	size := len(oldKeys) * 2
	pc.keys = make([]uint64, size)
	pc.vals = make([]uint32, size)
	pc.mask = uint64(size - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := pairHash(k) & pc.mask
		for pc.keys[j] != 0 {
			j = (j + 1) & pc.mask
		}
		pc.keys[j] = k
		pc.vals[j] = oldVals[i]
	}
}

// forEach visits every counted pair in unspecified order.
func (pc *pairCounter) forEach(fn func(k uint64, count int)) {
	for i, k := range pc.keys {
		if k != 0 {
			fn(k, int(pc.vals[i]))
		}
	}
}
