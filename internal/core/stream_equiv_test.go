package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"ocasta/internal/trace"
)

// This file holds the streaming-vs-batch equivalence property tests: the
// incremental engine (StreamWindower → PairStats.Add → dirty-component
// recluster) must produce byte-identical output to the batch pipeline
// (Windower.GroupTrace → NewPairStats → Clusterer.Cluster) on the same
// event set — the same contract hac_equiv_test.go enforces between the
// chain and naive clusterers.

var streamT0 = time.Date(2013, 9, 1, 12, 0, 0, 0, time.UTC)

// streamRandomTrace builds a multi-app write trace with second-granular
// timestamps, heavy window collisions, repeated keys, and deletes.
func streamRandomTrace(rng *rand.Rand, events int) *trace.Trace {
	apps := []string{"alpha", "beta", "gamma", "delta"}
	tr := &trace.Trace{Name: "equiv"}
	span := events/3 + 1
	for i := 0; i < events; i++ {
		op := trace.OpWrite
		if rng.Intn(12) == 0 {
			op = trace.OpDelete
		}
		app := apps[rng.Intn(len(apps))]
		tr.Events = append(tr.Events, trace.Event{
			Time:  streamT0.Add(time.Duration(rng.Intn(span)) * time.Second),
			Op:    op,
			Store: trace.StoreRegistry,
			App:   app,
			Key:   fmt.Sprintf("%s/k%02d", app, rng.Intn(16)),
			Value: "v",
		})
	}
	tr.SortByTime()
	return tr
}

// shuffleWithinHorizon perturbs event order, keeping every event's
// displacement in time strictly under horizon (adjacent swaps only touch
// pairs whose timestamps differ by less than the horizon).
func shuffleWithinHorizon(rng *rand.Rand, tr *trace.Trace, horizon time.Duration) *trace.Trace {
	out := tr.Clone()
	evs := out.Events
	for pass := 0; pass < 4; pass++ {
		for i := len(evs) - 1; i > 0; i-- {
			if rng.Intn(2) == 0 {
				continue
			}
			d := evs[i].Time.Sub(evs[i-1].Time)
			if d < 0 {
				d = -d
			}
			if d < horizon {
				evs[i], evs[i-1] = evs[i-1], evs[i]
			}
		}
	}
	return out
}

// batchClusters runs the paper's batch pipeline over a trace.
func batchClusters(tr *trace.Trace, window time.Duration, mode trace.GroupMode, linkage Linkage, corrThreshold float64) ([]trace.Group, *PairStats, []Cluster) {
	w := trace.NewWindower(window, mode)
	groups := w.GroupTrace(tr)
	ps := NewPairStats(groups)
	cl := NewClusterer(linkage).Cluster(ps, ThresholdFromCorrelation(corrThreshold))
	return groups, ps, cl
}

func comparePairStats(t *testing.T, tag string, tr *trace.Trace, batch, stream *PairStats) {
	t.Helper()
	if batch.NumGroups() != stream.NumGroups() {
		t.Fatalf("%s: NumGroups batch=%d stream=%d", tag, batch.NumGroups(), stream.NumGroups())
	}
	bk, sk := batch.Keys(), stream.Keys()
	if !reflect.DeepEqual(bk, sk) {
		t.Fatalf("%s: key universes differ:\n batch %v\nstream %v", tag, bk, sk)
	}
	for _, a := range bk {
		if be, se := batch.Episodes(a), stream.Episodes(a); be != se {
			t.Fatalf("%s: Episodes(%s) batch=%d stream=%d", tag, a, be, se)
		}
	}
	if batch.NumPairs() != stream.NumPairs() {
		t.Fatalf("%s: NumPairs batch=%d stream=%d", tag, batch.NumPairs(), stream.NumPairs())
	}
	for i := 0; i < len(bk); i++ {
		for j := i + 1; j < len(bk); j++ {
			if bc, sc := batch.CoEpisodes(bk[i], bk[j]), stream.CoEpisodes(bk[i], bk[j]); bc != sc {
				t.Fatalf("%s: CoEpisodes(%s,%s) batch=%d stream=%d", tag, bk[i], bk[j], bc, sc)
			}
		}
	}
}

// TestStreamBatchEquivalence is the headline property test: for random
// traces, both group modes, in-order and horizon-bounded out-of-order
// arrival, the streaming engine's groups, pair statistics, and clusters
// must equal the batch pipeline's exactly. Reclustering is exercised both
// incrementally (periodic mid-stream cuts marking most components clean)
// and as one full cut from scratch.
func TestStreamBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const horizon = 4 * time.Second
	linkages := []Linkage{LinkageComplete, LinkageSingle, LinkageAverage}
	for trial := 0; trial < 120; trial++ {
		tr := streamRandomTrace(rng, 80+rng.Intn(200))
		mode := trace.GroupAnchored
		if trial%2 == 1 {
			mode = trace.GroupChained
		}
		linkage := linkages[trial%len(linkages)]
		threshold := []float64{2, 1.5, 1}[trial%3]
		window := time.Duration(trial%3) * time.Second

		wantGroups, wantPS, wantClusters := batchClusters(tr, window, mode, linkage, threshold)

		// EngineConfig expresses the zero-second window as a negative value
		// (0 selects the default).
		engWindow := window
		if engWindow == 0 {
			engWindow = -1
		}

		feed := tr
		if trial%2 == 0 {
			feed = shuffleWithinHorizon(rng, tr, horizon)
		}

		eng := NewEngine(EngineConfig{
			Window:      engWindow,
			Mode:        mode,
			Horizon:     horizon,
			Linkage:     linkage,
			Threshold:   threshold,
			Parallelism: 1 + trial%3,
		})
		// Interleave pushes with periodic reclusters so the dirty-component
		// path actually runs mid-stream (its correctness at every
		// intermediate point is implied by the final equality: a stale
		// cache entry spliced in would corrupt the final cut).
		step := 13 + trial%17
		for i, ev := range feed.Events {
			eng.Push(ev)
			if i%step == step-1 {
				eng.Recluster()
			}
		}
		eng.Flush()
		gotClusters := eng.Recluster()

		tag := fmt.Sprintf("trial %d (mode=%v window=%v linkage=%v thr=%v)", trial, mode, window, linkage, threshold)
		if eng.NumGroups() != len(wantGroups) {
			t.Fatalf("%s: groups folded=%d batch=%d", tag, eng.NumGroups(), len(wantGroups))
		}
		func() {
			eng.mu.Lock()
			defer eng.mu.Unlock()
			comparePairStats(t, tag, tr, wantPS, eng.ps)
		}()
		if !reflect.DeepEqual(gotClusters, wantClusters) {
			t.Fatalf("%s: clusters differ:\n got %+v\nwant %+v", tag, gotClusters, wantClusters)
		}
		// The published snapshot is what the wire layer serves.
		if !reflect.DeepEqual(eng.Clusters(), wantClusters) {
			t.Fatalf("%s: published snapshot differs from recluster result", tag)
		}
		// A second recluster with nothing new must be a pure cache splice
		// with identical output.
		if again := eng.Recluster(); !reflect.DeepEqual(again, wantClusters) {
			t.Fatalf("%s: idle recluster changed output", tag)
		}
	}
}

// TestStreamGroupsMatchBatch checks the group layer in isolation,
// including App attribution and emission completeness.
func TestStreamGroupsMatchBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		tr := streamRandomTrace(rng, 60+rng.Intn(150))
		for _, mode := range []trace.GroupMode{trace.GroupAnchored, trace.GroupChained} {
			w := trace.NewWindower(time.Second, mode)
			want := w.GroupTrace(tr)
			var got []trace.Group
			sw := trace.NewStreamWindower(time.Second, mode, 0, func(g *trace.Group) {
				cp := *g
				cp.Keys = append([]string(nil), g.Keys...)
				got = append(got, cp)
			})
			for _, ev := range tr.Events {
				sw.Push(ev)
			}
			sw.Flush()
			trace.SortGroups(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d mode=%v: groups differ:\n got %+v\nwant %+v", trial, mode, got, want)
			}
		}
	}
}

// TestEngineDirtyReclusterMatchesFull grows one region of a many-
// component universe and verifies the incremental recluster (most
// components spliced from cache) equals a from-scratch batch clustering
// after every change.
func TestEngineDirtyReclusterMatchesFull(t *testing.T) {
	const comps = 40
	mkGroup := func(comp, episode int) trace.Group {
		start := streamT0.Add(time.Duration(episode*comps+comp) * 10 * time.Second)
		var keys []string
		for k := 0; k < 4; k++ {
			keys = append(keys, fmt.Sprintf("c%03d/k%d", comp, k))
		}
		return trace.Group{Start: start, End: start, Keys: keys}
	}

	eng := NewEngine(EngineConfig{Threshold: 2})
	var all []trace.Group
	push := func(g trace.Group) {
		all = append(all, g)
		// Feed the group's writes as events; each group sits in its own
		// window by construction.
		for _, k := range g.Keys {
			eng.Push(trace.Event{Time: g.Start, Op: trace.OpWrite, Key: k})
		}
	}

	for c := 0; c < comps; c++ {
		push(mkGroup(c, 0))
	}
	eng.Flush()
	first := eng.Recluster()
	if want := NewClusterer(LinkageComplete).Cluster(NewPairStats(all), DefaultThreshold); !reflect.DeepEqual(first, want) {
		t.Fatalf("initial recluster differs:\n got %+v\nwant %+v", first, want)
	}

	// Touch single components one at a time; every incremental cut must
	// match a full batch rebuild over all groups so far.
	rng := rand.New(rand.NewSource(5))
	for episode := 1; episode <= 25; episode++ {
		comp := rng.Intn(comps)
		g := mkGroup(comp, episode)
		if episode%5 == 0 {
			// Sometimes split the group so correlations inside the
			// component actually change shape, not just scale.
			g.Keys = g.Keys[:2]
		}
		push(g)
		eng.Flush()
		got := eng.Recluster()
		want := NewClusterer(LinkageComplete).Cluster(NewPairStats(all), DefaultThreshold)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("episode %d (comp %d): incremental != full:\n got %+v\nwant %+v", episode, comp, got, want)
		}
	}

	// Merge two components: the spliced result must reflect the union.
	bridge := trace.Group{
		Start: streamT0.Add(1000 * time.Hour),
		End:   streamT0.Add(1000 * time.Hour),
		Keys:  []string{"c000/k0", "c001/k0"},
	}
	push(bridge)
	eng.Flush()
	got := eng.Recluster()
	want := NewClusterer(LinkageComplete).Cluster(NewPairStats(all), DefaultThreshold)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("component merge: incremental != full:\n got %+v\nwant %+v", got, want)
	}
}

// TestEngineConcurrentObservers exercises the engine under -race: many
// goroutines observing disjoint apps, concurrent reclusters, correlation
// reads, and snapshot readers. Each app's events arrive in order, so the
// final flushed clustering must still equal the batch pipeline's.
func TestEngineConcurrentObservers(t *testing.T) {
	const (
		apps          = 8
		eventsPerApp  = 400
		reclusterIter = 50
	)
	tr := &trace.Trace{Name: "conc"}
	perApp := make([][]trace.Event, apps)
	rng := rand.New(rand.NewSource(17))
	for a := 0; a < apps; a++ {
		app := fmt.Sprintf("app%d", a)
		tcur := streamT0
		for i := 0; i < eventsPerApp; i++ {
			tcur = tcur.Add(time.Duration(rng.Intn(3)) * time.Second)
			ev := trace.Event{
				Time: tcur,
				Op:   trace.OpWrite,
				App:  app,
				Key:  fmt.Sprintf("%s/k%d", app, rng.Intn(10)),
			}
			perApp[a] = append(perApp[a], ev)
			tr.Events = append(tr.Events, ev)
		}
	}
	tr.SortByTime()
	_, _, want := batchClusters(tr, time.Second, trace.GroupAnchored, LinkageComplete, 2)

	eng := NewEngine(EngineConfig{Threshold: 2})
	var wg sync.WaitGroup
	for a := 0; a < apps; a++ {
		wg.Add(1)
		go func(evs []trace.Event) {
			defer wg.Done()
			for _, ev := range evs {
				eng.Push(ev)
			}
		}(perApp[a])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reclusterIter; i++ {
			eng.Recluster()
		}
	}()
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = eng.Correlation("app0/k0", "app0/k1")
				_ = eng.Clusters()
				_ = eng.Version()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	eng.Flush()
	got := eng.Recluster()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent engine != batch:\n got %+v\nwant %+v", got, want)
	}
}
