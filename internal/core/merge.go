package core

// Cross-node statistics merging. Every field of PairStats is an additive
// count keyed by interned symbols, so two accumulators built over disjoint
// group streams merge exactly: intern the peer's symbols, remap its ids,
// and sum. A cluster of N primaries uses this to serve globally-correct
// CLUSTERS/CORR from any node: each node's engine folds in the others'
// episode counts, so a cluster spanning keys homed on different primaries
// still correlates.
//
// The merge is exact when every co-modification group was observed whole
// by exactly one accumulator (groups partition cleanly, as they do when
// the per-node streams are time-merged before windowing — see
// ttkvwire.AnalyticsDrainer). When instead each node windows only its own
// slots' writes, a group spanning two nodes is seen as two smaller groups
// and neither node counts the cross-node pair; the merged result then
// under-counts exactly those cross-node co-episodes and nothing else.

// Merge folds other's statistics into ps additively: episode counts,
// co-episode counts, group totals, and last-modification times. other is
// not modified and may use a completely different interning order; ids are
// remapped through the symbol table. Merging grows the key universe, which
// invalidates the sorted-id permutation exactly like Add does, so
// clustering-facing accessors stay bit-identical to a from-scratch build.
func (ps *PairStats) Merge(other *PairStats) {
	if other == nil || other.groups == 0 && len(other.syms) == 0 {
		return
	}
	remap := make([]int, len(other.syms))
	for oid, key := range other.syms {
		id := ps.intern(key)
		remap[oid] = id
		ps.ep[id] += other.ep[oid]
		if other.last[oid] > ps.last[id] {
			ps.last[id] = other.last[oid]
		}
	}
	other.co.forEach(func(k uint64, count int) {
		lo, hi := unpackPair(k)
		ps.co.add(packPair(remap[lo], remap[hi]), count)
	})
	ps.groups += other.groups
}

// Clone returns an independent deep copy of the statistics, safe to Merge
// elsewhere or ship to a peer while the original keeps accumulating.
func (ps *PairStats) Clone() *PairStats {
	out := &PairStats{
		syms:   append([]string(nil), ps.syms...),
		index:  make(map[string]int, len(ps.index)),
		ep:     append([]int(nil), ps.ep...),
		co:     ps.co.clone(),
		last:   append([]int64(nil), ps.last...),
		groups: ps.groups,
	}
	for k, v := range ps.index {
		out.index[k] = v
	}
	return out
}

// StatsClone drains staged events and returns a deep copy of the engine's
// accumulated pair statistics — the payload one node ships to its peers in
// a cross-node statistics exchange.
func (e *Engine) StatsClone() *PairStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.drainLocked()
	e.statsMu.RLock()
	defer e.statsMu.RUnlock()
	return e.ps.Clone()
}

// MergeStats folds a peer accumulator into the engine's statistics and
// marks every merged key dirty, so the next Recluster re-runs HAC on every
// component the peer's counts could have changed.
func (e *Engine) MergeStats(other *PairStats) {
	if other == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.drainLocked()
	e.statsMu.Lock()
	e.ps.Merge(other)
	for _, k := range other.syms {
		id := e.ps.index[k]
		for id >= len(e.dirty) {
			e.dirty = append(e.dirty, false)
		}
		if !e.dirty[id] {
			e.dirty[id] = true
			e.dirtyIDs = append(e.dirtyIDs, id)
		}
	}
	e.statsMu.Unlock()
}
