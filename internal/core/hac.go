package core

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Linkage selects how the distance between two clusters is derived from
// the distances between their members.
type Linkage uint8

const (
	// LinkageComplete (the paper's "maximum linkage criterion") uses the
	// largest member-pair distance, so a merged cluster is only as related
	// as its least-related pair. This is Ocasta's default.
	LinkageComplete Linkage = iota + 1
	// LinkageSingle uses the smallest member-pair distance.
	LinkageSingle
	// LinkageAverage uses the unweighted mean of member-pair distances
	// (UPGMA); included for the ablation study.
	LinkageAverage
)

// String returns the canonical name of the linkage criterion.
func (l Linkage) String() string {
	switch l {
	case LinkageComplete:
		return "complete"
	case LinkageSingle:
		return "single"
	case LinkageAverage:
		return "average"
	default:
		return fmt.Sprintf("linkage(%d)", uint8(l))
	}
}

// Merge records one agglomeration step of the dendrogram. Node identifiers
// follow the scipy convention: leaves are 0..n-1; the i-th merge creates
// node n+i.
type Merge struct {
	A, B   int     // the two nodes merged
	Node   int     // identifier of the newly created node
	Height float64 // linkage distance at which the merge happened
}

// Dendrogram is the full merge tree produced by HAC. Because complete,
// single, and average linkage are all monotone (merge heights never
// decrease), cutting the dendrogram at a threshold is equivalent to
// stopping the clustering at that threshold, so one dendrogram supports
// arbitrarily many threshold sweeps (used by the Fig 3b bench).
type Dendrogram struct {
	keys   []string
	merges []Merge
	// modCount / lastMod carry per-leaf episode statistics through to the
	// clusters produced by Cut.
	modCount []int
	lastMod  []int64
}

// Keys returns the leaf keys, sorted, as indexed by leaf node identifiers.
func (d *Dendrogram) Keys() []string {
	out := make([]string, len(d.keys))
	copy(out, d.keys)
	return out
}

// Merges returns the merge sequence in the order it was performed.
func (d *Dendrogram) Merges() []Merge {
	out := make([]Merge, len(d.merges))
	copy(out, d.merges)
	return out
}

// Cluster is a group of related configuration settings extracted by Ocasta.
type Cluster struct {
	// Keys are the member settings, sorted.
	Keys []string
	// ModCount is the total number of modification episodes that touched
	// any member key; repair searches low-count clusters first.
	ModCount int
	// LastModified is the most recent modification episode of any member.
	LastModified time.Time
}

// Size returns the number of settings in the cluster.
func (c *Cluster) Size() int { return len(c.Keys) }

// Contains reports whether the cluster includes key.
func (c *Cluster) Contains(key string) bool {
	i := sort.SearchStrings(c.Keys, key)
	return i < len(c.Keys) && c.Keys[i] == key
}

// Cut partitions the leaves using every merge with height <= maxDist.
// Leaves that never merged below the threshold come back as singleton
// clusters. Clusters are returned in deterministic order (by first key).
func (d *Dendrogram) Cut(maxDist float64) []Cluster {
	n := len(d.keys)
	parent := make([]int, n+len(d.merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range d.merges {
		if m.Height > maxDist {
			continue
		}
		ra, rb := find(m.A), find(m.B)
		parent[ra] = m.Node
		parent[rb] = m.Node
	}
	members := make(map[int][]int)
	for leaf := 0; leaf < n; leaf++ {
		root := find(leaf)
		members[root] = append(members[root], leaf)
	}
	clusters := make([]Cluster, 0, len(members))
	for _, leaves := range members {
		c := Cluster{Keys: make([]string, 0, len(leaves))}
		var last int64
		for _, leaf := range leaves {
			c.Keys = append(c.Keys, d.keys[leaf])
			c.ModCount += d.modCount[leaf]
			if d.lastMod[leaf] > last {
				last = d.lastMod[leaf]
			}
		}
		sort.Strings(c.Keys)
		if last > 0 {
			c.LastModified = time.Unix(0, last).UTC()
		}
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Keys[0] < clusters[j].Keys[0] })
	return clusters
}

// Clusterer runs hierarchical agglomerative clustering over pair statistics.
type Clusterer struct {
	linkage Linkage
}

// NewClusterer returns a clusterer with the given linkage criterion;
// an unknown linkage falls back to the paper's complete linkage.
func NewClusterer(linkage Linkage) *Clusterer {
	if linkage != LinkageSingle && linkage != LinkageAverage {
		linkage = LinkageComplete
	}
	return &Clusterer{linkage: linkage}
}

// Linkage returns the configured linkage criterion.
func (c *Clusterer) Linkage() Linkage { return c.linkage }

// Dendrogram computes the full merge tree of the keys in ps. Keys that were
// never co-modified sit in different connected components of the
// co-modification graph and are never merged (their pairwise distance is
// infinite), so the result is in general a forest.
func (c *Clusterer) Dendrogram(ps *PairStats) *Dendrogram {
	n := len(ps.keys)
	d := &Dendrogram{
		keys:     ps.Keys(),
		modCount: make([]int, n),
		lastMod:  make([]int64, n),
	}
	copy(d.modCount, ps.epCount)
	copy(d.lastMod, ps.last)
	nextNode := n
	for _, comp := range ps.components() {
		if len(comp) < 2 {
			continue
		}
		nextNode = c.mergeComponent(ps, comp, d, nextNode)
	}
	return d
}

// mergeComponent runs agglomerative clustering within one connected
// component using a Lance-Williams distance-matrix update. Returns the next
// unused node identifier.
func (c *Clusterer) mergeComponent(ps *PairStats, comp []int, d *Dendrogram, nextNode int) int {
	k := len(comp)
	type active struct {
		node int // dendrogram node id
		size int // number of leaves
	}
	rows := make([]active, k)
	for i, leaf := range comp {
		rows[i] = active{node: leaf, size: 1}
	}
	// dist is a symmetric k x k matrix over active rows.
	dist := make([][]float64, k)
	for i := range dist {
		dist[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			dd := DistanceFromCorrelation(ps.correlationByIndex(comp[i], comp[j]))
			dist[i][j] = dd
			dist[j][i] = dd
		}
	}
	alive := make([]bool, k)
	for i := range alive {
		alive[i] = true
	}
	remaining := k
	for remaining > 1 {
		// Find the closest live pair; ties break toward the smallest
		// indices for determinism.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < k; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < k; j++ {
				if !alive[j] {
					continue
				}
				if dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		if math.IsInf(best, 1) {
			break // no finite merge remains in this component
		}
		d.merges = append(d.merges, Merge{
			A: rows[bi].node, B: rows[bj].node, Node: nextNode, Height: best,
		})
		// Fold bj into bi under the Lance-Williams update for the linkage.
		si, sj := float64(rows[bi].size), float64(rows[bj].size)
		for m := 0; m < k; m++ {
			if !alive[m] || m == bi || m == bj {
				continue
			}
			dim, djm := dist[bi][m], dist[bj][m]
			var nd float64
			switch c.linkage {
			case LinkageSingle:
				nd = math.Min(dim, djm)
			case LinkageAverage:
				switch {
				case math.IsInf(dim, 1) || math.IsInf(djm, 1):
					nd = math.Inf(1)
				default:
					nd = (si*dim + sj*djm) / (si + sj)
				}
			default: // complete
				nd = math.Max(dim, djm)
			}
			dist[bi][m] = nd
			dist[m][bi] = nd
		}
		rows[bi] = active{node: nextNode, size: rows[bi].size + rows[bj].size}
		alive[bj] = false
		nextNode++
		remaining--
	}
	return nextNode
}

// Cluster is the one-call convenience API: it builds the dendrogram and
// cuts it at threshold (a distance; use ThresholdFromCorrelation to derive
// it from a correlation value).
func (c *Clusterer) Cluster(ps *PairStats, threshold float64) []Cluster {
	return c.Dendrogram(ps).Cut(threshold)
}

// SortForRecovery orders clusters the way Ocasta's repair tool searches
// them: by ascending modification count (changes to configuration settings
// are infrequent, so rarely-modified clusters are checked first), breaking
// ties toward more recently modified clusters, then by first key for
// determinism.
func SortForRecovery(clusters []Cluster) {
	sort.SliceStable(clusters, func(i, j int) bool {
		a, b := &clusters[i], &clusters[j]
		if a.ModCount != b.ModCount {
			return a.ModCount < b.ModCount
		}
		if !a.LastModified.Equal(b.LastModified) {
			return a.LastModified.After(b.LastModified)
		}
		return a.Keys[0] < b.Keys[0]
	})
}

// MultiKey filters to clusters with more than one setting — the clusters
// Table II of the paper evaluates.
func MultiKey(clusters []Cluster) []Cluster {
	out := make([]Cluster, 0, len(clusters))
	for _, cl := range clusters {
		if cl.Size() > 1 {
			out = append(out, cl)
		}
	}
	return out
}

// AverageSize returns the mean cluster size (Fig 3 of the paper); 0 for an
// empty slice.
func AverageSize(clusters []Cluster) float64 {
	if len(clusters) == 0 {
		return 0
	}
	total := 0
	for _, cl := range clusters {
		total += cl.Size()
	}
	return float64(total) / float64(len(clusters))
}
