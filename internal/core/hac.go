package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Linkage selects how the distance between two clusters is derived from
// the distances between their members.
type Linkage uint8

const (
	// LinkageComplete (the paper's "maximum linkage criterion") uses the
	// largest member-pair distance, so a merged cluster is only as related
	// as its least-related pair. This is Ocasta's default.
	LinkageComplete Linkage = iota + 1
	// LinkageSingle uses the smallest member-pair distance.
	LinkageSingle
	// LinkageAverage uses the unweighted mean of member-pair distances
	// (UPGMA); included for the ablation study.
	LinkageAverage
)

// String returns the canonical name of the linkage criterion.
func (l Linkage) String() string {
	switch l {
	case LinkageComplete:
		return "complete"
	case LinkageSingle:
		return "single"
	case LinkageAverage:
		return "average"
	default:
		return fmt.Sprintf("linkage(%d)", uint8(l))
	}
}

// avgScale is the fixed-point scale for average-linkage bookkeeping.
// Complete and single linkage only ever take the max or min of original
// leaf-pair distances, so their merge heights are bit-exact regardless of
// merge order. Average linkage does real arithmetic, and an incrementally
// maintained mean is float-associativity-sensitive: two algorithms merging
// the same tree in different temporal order (the naive global scan vs the
// nearest-neighbour chain) drift apart by an ulp and turn exact rational
// ties into spurious strict inequalities. So for average linkage the
// stores keep the SUM of member-pair distances, quantised to integers at
// avgScale resolution. Integer-valued float64 addition below 2^53 is exact
// and therefore order-independent, and the derived mean
// sum/(avgScale*|A|*|B|) is a correctly-rounded pure function of exact
// integers — bit-identical however the algorithm ordered its merges.
// Exactness holds while pairs*maxDist*avgScale < 2^53, i.e. component
// sizes into the tens of thousands of keys for realistic co-modification
// distances.
const avgScale = 1 << 20

// combine folds two stored values (distances, or scaled distance sums for
// average linkage) of cluster pairs (I,K) and (J,K) into the stored value
// for (I∪J, K). +Inf (never co-modified) propagates through max and sum,
// so complete and average linkage keep infinite entries infinite; min
// keeps the finite side for single linkage.
func (l Linkage) combine(vi, vj float64) float64 {
	switch l {
	case LinkageSingle:
		return math.Min(vi, vj)
	case LinkageAverage:
		return vi + vj
	default: // complete
		return math.Max(vi, vj)
	}
}

// storedValue converts a leaf-pair distance into the store representation
// for the linkage.
func (l Linkage) storedValue(d float64) float64 {
	if l == LinkageAverage && !math.IsInf(d, 1) {
		return math.Round(d * avgScale)
	}
	return d
}

// cutThreshold maps a caller's distance threshold onto the linkage's
// merge-height grid: average-linkage heights are quantised to avgScale
// resolution (see the avgScale comment), so the threshold must be
// quantised identically or a pair whose distance exactly equals it would
// fail to merge. Dendrogram.Cut and clusterComponent (the incremental
// engine's per-component cut) share this so batch and streaming cuts can
// never drift apart.
func (l Linkage) cutThreshold(maxDist float64) float64 {
	if l == LinkageAverage {
		return math.Round(maxDist*avgScale) / avgScale
	}
	return maxDist
}

// parallelFor runs fn(i) for every i in [0, n) across at most workers
// goroutines (<= 1 runs inline). Work is handed out by an atomic counter,
// so output slots indexed by i are deterministic regardless of worker
// count — the scheduling shared by component clustering in Dendrogram and
// Engine.Recluster.
func parallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Merge records one agglomeration step of the dendrogram. Node identifiers
// follow the scipy convention: leaves are 0..n-1; internal nodes are
// numbered from n upward. Each connected component of the co-modification
// graph is assigned a contiguous node-id range up front (k-1 ids for a
// component of k leaves), so identifiers are stable regardless of how many
// workers cluster components concurrently; a component whose merging stops
// early (at infinite distance) simply leaves the tail of its range unused.
type Merge struct {
	A, B   int     // the two nodes merged
	Node   int     // identifier of the newly created node
	Height float64 // linkage distance at which the merge happened
}

// Dendrogram is the full merge tree produced by HAC. Because complete,
// single, and average linkage are all monotone (merge heights never
// decrease), cutting the dendrogram at a threshold is equivalent to
// stopping the clustering at that threshold, so one dendrogram supports
// arbitrarily many threshold sweeps (used by the Fig 3b bench).
type Dendrogram struct {
	keys    []string
	merges  []Merge
	linkage Linkage
	nodes   int // total node ids reserved (leaves + per-component ranges)
	// modCount / lastMod carry per-leaf episode statistics through to the
	// clusters produced by Cut.
	modCount []int
	lastMod  []int64
}

// Keys returns the leaf keys, sorted, as indexed by leaf node identifiers.
func (d *Dendrogram) Keys() []string {
	out := make([]string, len(d.keys))
	copy(out, d.keys)
	return out
}

// Merges returns the merge sequence, ordered by component and then by
// non-decreasing height within each component.
func (d *Dendrogram) Merges() []Merge {
	out := make([]Merge, len(d.merges))
	copy(out, d.merges)
	return out
}

// Cluster is a group of related configuration settings extracted by Ocasta.
type Cluster struct {
	// Keys are the member settings, sorted.
	Keys []string
	// ModCount is the total number of modification episodes that touched
	// any member key; repair searches low-count clusters first.
	ModCount int
	// LastModified is the most recent modification episode of any member.
	LastModified time.Time
}

// Size returns the number of settings in the cluster.
func (c *Cluster) Size() int { return len(c.Keys) }

// Contains reports whether the cluster includes key.
func (c *Cluster) Contains(key string) bool {
	i := sort.SearchStrings(c.Keys, key)
	return i < len(c.Keys) && c.Keys[i] == key
}

// Cut partitions the leaves using every merge with height <= maxDist.
// Leaves that never merged below the threshold come back as singleton
// clusters. Clusters are returned in deterministic order (by first key).
func (d *Dendrogram) Cut(maxDist float64) []Cluster {
	maxDist = d.linkage.cutThreshold(maxDist)
	n := len(d.keys)
	size := n + len(d.merges)
	if d.nodes > size {
		size = d.nodes
	}
	parent := make([]int, size)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range d.merges {
		if m.Height > maxDist {
			continue
		}
		ra, rb := find(m.A), find(m.B)
		parent[ra] = m.Node
		parent[rb] = m.Node
	}
	members := make(map[int][]int)
	for leaf := 0; leaf < n; leaf++ {
		root := find(leaf)
		members[root] = append(members[root], leaf)
	}
	clusters := make([]Cluster, 0, len(members))
	for _, leaves := range members {
		c := Cluster{Keys: make([]string, 0, len(leaves))}
		var last int64
		for _, leaf := range leaves {
			c.Keys = append(c.Keys, d.keys[leaf])
			c.ModCount += d.modCount[leaf]
			if d.lastMod[leaf] > last {
				last = d.lastMod[leaf]
			}
		}
		sort.Strings(c.Keys)
		if last > 0 {
			c.LastModified = time.Unix(0, last).UTC()
		}
		clusters = append(clusters, c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Keys[0] < clusters[j].Keys[0] })
	return clusters
}

// distStore is the inter-cluster distance state over one component's slots.
// Absent entries are +Inf (never co-modified). Implementations keep the
// state symmetric and track cluster sizes across folds.
type distStore interface {
	// nearest returns the nearest live neighbour of slot i and its
	// distance, breaking distance ties toward the smallest slot index, or
	// (-1, +Inf) when no live neighbour is at finite distance.
	nearest(i int, alive []bool) (int, float64)
	// fold merges slot j into slot i, dropping slot j.
	fold(i, j int, alive []bool)
}

// denseDist is a flat k x k matrix; right for small or well-connected
// components where most pairs are at finite distance.
type denseDist struct {
	k       int
	linkage Linkage
	v       []float64 // stored values (see Linkage.storedValue)
	size    []float64 // leaves per live slot
}

func newDenseDist(ps *PairStats, comp []int, linkage Linkage) *denseDist {
	k := len(comp)
	m := &denseDist{k: k, linkage: linkage, v: make([]float64, k*k), size: make([]float64, k)}
	for i := 0; i < k; i++ {
		m.size[i] = 1
		m.v[i*k+i] = math.Inf(1)
		for j := i + 1; j < k; j++ {
			vv := linkage.storedValue(DistanceFromCorrelation(ps.correlationByIndex(comp[i], comp[j])))
			m.v[i*k+j] = vv
			m.v[j*k+i] = vv
		}
	}
	return m
}

func (m *denseDist) dist(i, j int) float64 {
	v := m.v[i*m.k+j]
	if m.linkage == LinkageAverage {
		return v / (avgScale * m.size[i] * m.size[j])
	}
	return v
}

func (m *denseDist) nearest(i int, alive []bool) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for j := 0; j < m.k; j++ {
		if j == i || !alive[j] {
			continue
		}
		if dd := m.dist(i, j); dd < bestD { // ascending scan: ties keep the smallest index
			best, bestD = j, dd
		}
	}
	if math.IsInf(bestD, 1) {
		return -1, bestD
	}
	return best, bestD
}

func (m *denseDist) fold(i, j int, alive []bool) {
	ri := m.v[i*m.k : (i+1)*m.k]
	rj := m.v[j*m.k : (j+1)*m.k]
	for x := 0; x < m.k; x++ {
		if !alive[x] || x == i || x == j {
			continue
		}
		nv := m.linkage.combine(ri[x], rj[x])
		ri[x] = nv
		m.v[x*m.k+i] = nv
		m.v[x*m.k+j] = math.Inf(1)
	}
	ri[j] = math.Inf(1)
	rj[i] = math.Inf(1)
	m.size[i] += m.size[j]
}

// sparseDist stores only finite entries, one map per slot. A component whose
// co-modification graph is sparse never materialises the k x k matrix of
// mostly-infinite distances: memory and per-merge work follow the number of
// co-modified pairs instead of k².
type sparseDist struct {
	linkage Linkage
	rows    []map[int]float64
	size    []float64
}

func newSparseDist(ps *PairStats, comp []int, adj [][]int, linkage Linkage) *sparseDist {
	k := len(comp)
	slot := make(map[int]int, k)
	for i, g := range comp {
		slot[g] = i
	}
	m := &sparseDist{linkage: linkage, rows: make([]map[int]float64, k), size: make([]float64, k)}
	for i := range m.rows {
		m.size[i] = 1
		m.rows[i] = make(map[int]float64, len(adj[comp[i]]))
	}
	for i, g := range comp {
		for _, nb := range adj[g] {
			j := slot[nb]
			if j <= i {
				continue
			}
			vv := linkage.storedValue(DistanceFromCorrelation(ps.correlationByIndex(g, nb)))
			m.rows[i][j] = vv
			m.rows[j][i] = vv
		}
	}
	return m
}

func (m *sparseDist) nearest(i int, alive []bool) (int, float64) {
	best, bestD := -1, math.Inf(1)
	si := m.size[i]
	for j, vv := range m.rows[i] {
		if !alive[j] {
			continue
		}
		dd := vv
		if m.linkage == LinkageAverage {
			dd = vv / (avgScale * si * m.size[j])
		}
		// Map iteration order is random, so the smallest-index tie-break
		// must be explicit.
		if dd < bestD || (dd == bestD && (best < 0 || j < best)) {
			best, bestD = j, dd
		}
	}
	return best, bestD
}

func (m *sparseDist) fold(i, j int, alive []bool) {
	ri, rj := m.rows[i], m.rows[j]
	delete(ri, j)
	delete(rj, i)
	if m.linkage == LinkageSingle {
		// min(d, +Inf) is finite: the merged row is the union of the two
		// neighbour sets.
		for x, vj := range rj {
			if vi, ok := ri[x]; !ok || vj < vi {
				ri[x] = vj
				m.rows[x][i] = vj
			}
			delete(m.rows[x], j)
		}
	} else {
		// Complete and average propagate +Inf: the merged row is the
		// intersection of the two neighbour sets.
		for x, vi := range ri {
			vj, ok := rj[x]
			if !ok {
				delete(ri, x)
				delete(m.rows[x], i)
				continue
			}
			nv := m.linkage.combine(vi, vj)
			ri[x] = nv
			m.rows[x][i] = nv
		}
		for x := range rj {
			delete(m.rows[x], j)
		}
	}
	m.rows[j] = nil
	m.size[i] += m.size[j]
}

// distModeAuto and friends pick the distance representation per component;
// tests pin the mode to exercise both code paths.
const (
	distModeAuto uint8 = iota
	distModeDense
	distModeSparse
)

// Clusterer runs hierarchical agglomerative clustering over pair statistics.
type Clusterer struct {
	linkage     Linkage
	parallelism int
	distMode    uint8
}

// NewClusterer returns a clusterer with the given linkage criterion;
// an unknown linkage falls back to the paper's complete linkage.
func NewClusterer(linkage Linkage) *Clusterer {
	if linkage != LinkageSingle && linkage != LinkageAverage {
		linkage = LinkageComplete
	}
	return &Clusterer{linkage: linkage}
}

// Linkage returns the configured linkage criterion.
func (c *Clusterer) Linkage() Linkage { return c.linkage }

// WithParallelism sets how many connected components of the co-modification
// graph are clustered concurrently and returns the clusterer for chaining.
// n <= 0 (the default) uses all available CPUs. The dendrogram is identical
// at every setting: components are independent and their node-id ranges are
// assigned up front.
func (c *Clusterer) WithParallelism(n int) *Clusterer {
	c.parallelism = n
	return c
}

// Parallelism returns the configured worker bound; 0 means all CPUs.
func (c *Clusterer) Parallelism() int {
	if c.parallelism < 0 {
		return 0
	}
	return c.parallelism
}

// workerCount resolves the configured parallelism to a concrete worker
// count.
func (c *Clusterer) workerCount() int {
	if c.parallelism > 0 {
		return c.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// componentBases reserves a contiguous internal-node-id range per component
// (k-1 ids for k leaves) and returns the per-component base ids plus the
// total number of node ids.
func componentBases(n int, comps [][]int) ([]int, int) {
	bases := make([]int, len(comps))
	next := n
	for i, comp := range comps {
		bases[i] = next
		if len(comp) > 1 {
			next += len(comp) - 1
		}
	}
	return bases, next
}

// Dendrogram computes the full merge tree of the keys in ps. Keys that were
// never co-modified sit in different connected components of the
// co-modification graph and are never merged (their pairwise distance is
// infinite), so the result is in general a forest. Independent components
// are clustered concurrently (see WithParallelism); output is deterministic
// regardless of worker count.
func (c *Clusterer) Dendrogram(ps *PairStats) *Dendrogram {
	n := ps.NumKeys()
	d := &Dendrogram{
		keys:     ps.Keys(),
		linkage:  c.linkage,
		modCount: make([]int, n),
		lastMod:  make([]int64, n),
	}
	ps.fillLeafStats(d.modCount, d.lastMod)
	adj := ps.adjacency()
	comps := ps.components(adj)
	bases, nodes := componentBases(n, comps)
	d.nodes = nodes

	work := make([]int, 0, len(comps))
	for i, comp := range comps {
		if len(comp) >= 2 {
			work = append(work, i)
		}
	}
	results := make([][]Merge, len(comps))
	parallelFor(len(work), c.workerCount(), func(t int) {
		i := work[t]
		results[i] = c.chainComponent(ps, comps[i], adj, bases[i])
	})
	for _, ms := range results {
		d.merges = append(d.merges, ms...)
	}
	return d
}

// rawMerge is a merge recorded during the nearest-neighbour chain, before
// heights are sorted and node ids assigned: slot b was folded into slot a.
type rawMerge struct {
	a, b int
	h    float64
}

// chainComponent clusters one connected component with the
// nearest-neighbour-chain algorithm: grow a chain of nearest neighbours
// until two clusters are mutually nearest, merge them, and continue from
// the remaining chain. Complete, single, and average linkage are all
// reducible, so every reciprocal-nearest pair is safe to merge and the
// whole component costs O(k²) time with O(k) scratch per step instead of
// the O(k³) repeated full-matrix scans of the naive algorithm.
func (c *Clusterer) chainComponent(ps *PairStats, comp []int, adj [][]int, base int) []Merge {
	k := len(comp)
	store := c.newStore(ps, comp, adj)
	alive := make([]bool, k)
	finished := make([]bool, k) // live but at infinite distance from every live slot
	for i := range alive {
		alive[i] = true
	}
	raw := make([]rawMerge, 0, k-1)
	chain := make([]int, 0, k)
	live, start := k, 0
	for live > 1 {
		// Drop chain entries invalidated by earlier merges.
		for len(chain) > 0 && !alive[chain[len(chain)-1]] {
			chain = chain[:len(chain)-1]
		}
		if len(chain) > k {
			// Tie plateau revisited a chain slot; restart the walk (a
			// fresh chain always reaches a reciprocal pair).
			chain = chain[:0]
		}
		if len(chain) == 0 {
			for start < k && (!alive[start] || finished[start]) {
				start++
			}
			if start == k {
				break // every live cluster is isolated
			}
			chain = append(chain, start)
		}
		top := chain[len(chain)-1]
		j, dj := store.nearest(top, alive)
		if j < 0 {
			// No finite distance remains: this cluster is done merging.
			finished[top] = true
			chain = chain[:len(chain)-1]
			continue
		}
		if len(chain) >= 2 && chain[len(chain)-2] == j {
			// Reciprocal nearest neighbours: merge into the smaller slot
			// so ties resolve exactly like the naive row-major scan.
			a, b := j, top
			if b < a {
				a, b = b, a
			}
			store.fold(a, b, alive)
			raw = append(raw, rawMerge{a: a, b: b, h: dj})
			alive[b] = false
			live--
			chain = chain[:len(chain)-2]
			continue
		}
		chain = append(chain, j)
	}
	return relabel(raw, comp, base)
}

// newStore picks the distance representation for one component: dense for
// small or well-connected components, sparse otherwise.
func (c *Clusterer) newStore(ps *PairStats, comp []int, adj [][]int) distStore {
	mode := c.distMode
	if mode == distModeAuto {
		k := len(comp)
		edges := 0
		for _, g := range comp {
			edges += len(adj[g])
		}
		edges /= 2
		if k <= 64 || edges*2 >= k*(k-1)/2 {
			mode = distModeDense
		} else {
			mode = distModeSparse
		}
	}
	if mode == distModeDense {
		return newDenseDist(ps, comp, c.linkage)
	}
	return newSparseDist(ps, comp, adj, c.linkage)
}

// relabel orders a component's chain merges by non-decreasing height and
// assigns node ids sequentially from base. The chain emits merges in
// dependency order, and reducible linkages are monotone along any
// dependency path, so a stable sort by height keeps every merge after the
// merges that built its operands.
func relabel(raw []rawMerge, comp []int, base int) []Merge {
	if len(raw) == 0 {
		return nil
	}
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].h < raw[j].h })
	nodeOf := make([]int, len(comp))
	for i, leaf := range comp {
		nodeOf[i] = leaf
	}
	merges := make([]Merge, len(raw))
	next := base
	for i, rm := range raw {
		merges[i] = Merge{A: nodeOf[rm.a], B: nodeOf[rm.b], Node: next, Height: rm.h}
		nodeOf[rm.a] = next
		next++
	}
	return merges
}

// Cluster is the one-call convenience API: it builds the dendrogram and
// cuts it at threshold (a distance; use ThresholdFromCorrelation to derive
// it from a correlation value).
func (c *Clusterer) Cluster(ps *PairStats, threshold float64) []Cluster {
	return c.Dendrogram(ps).Cut(threshold)
}

// clusterComponent runs HAC on one connected component and cuts it at
// maxDist, returning the component's clusters (unsorted; callers order
// the combined result). It produces exactly the clusters a full
// Dendrogram+Cut yields for the component's leaves: chainComponent gives
// identical merges, and cutting per component is equivalent because
// merges never cross components. This is the dirty-component fast path of
// incremental reclustering — only components whose statistics changed pay
// for it.
func (c *Clusterer) clusterComponent(ps *PairStats, comp []int, adj [][]int, maxDist float64) []Cluster {
	maxDist = c.linkage.cutThreshold(maxDist)
	k := len(comp)
	if k == 1 {
		return []Cluster{leafCluster(ps, comp[0])}
	}
	base := ps.NumKeys()
	merges := c.chainComponent(ps, comp, adj, base)

	// Scoped union-find over the component's node ids: leaves comp[0..k-1]
	// map to slots 0..k-1, internal nodes base+j to slots k+j.
	slotOf := func(node int) int {
		if node >= base {
			return k + (node - base)
		}
		i := sort.SearchInts(comp, node)
		return i
	}
	parent := make([]int, 2*k-1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range merges {
		if m.Height > maxDist {
			continue
		}
		ra, rb := find(slotOf(m.A)), find(slotOf(m.B))
		rn := slotOf(m.Node)
		parent[ra] = rn
		parent[rb] = rn
	}
	members := make(map[int][]int, k)
	for i, leaf := range comp {
		root := find(i)
		members[root] = append(members[root], leaf)
	}
	clusters := make([]Cluster, 0, len(members))
	for _, leaves := range members {
		cl := Cluster{Keys: make([]string, 0, len(leaves))}
		var last int64
		for _, leaf := range leaves {
			cl.Keys = append(cl.Keys, ps.keyBySorted(leaf))
			cl.ModCount += ps.ep[ps.perm[leaf]]
			if lm := ps.last[ps.perm[leaf]]; lm > last {
				last = lm
			}
		}
		sort.Strings(cl.Keys)
		if last > 0 {
			cl.LastModified = time.Unix(0, last).UTC()
		}
		clusters = append(clusters, cl)
	}
	return clusters
}

// leafCluster builds the singleton cluster of one sorted-space leaf id.
func leafCluster(ps *PairStats, leaf int) Cluster {
	id := ps.perm[leaf]
	cl := Cluster{Keys: []string{ps.syms[id]}, ModCount: ps.ep[id]}
	if ps.last[id] > 0 {
		cl.LastModified = time.Unix(0, ps.last[id]).UTC()
	}
	return cl
}

// SortForRecovery orders clusters the way Ocasta's repair tool searches
// them: by ascending modification count (changes to configuration settings
// are infrequent, so rarely-modified clusters are checked first), breaking
// ties toward more recently modified clusters, then by first key for
// determinism.
func SortForRecovery(clusters []Cluster) {
	sort.SliceStable(clusters, func(i, j int) bool {
		a, b := &clusters[i], &clusters[j]
		if a.ModCount != b.ModCount {
			return a.ModCount < b.ModCount
		}
		if !a.LastModified.Equal(b.LastModified) {
			return a.LastModified.After(b.LastModified)
		}
		return a.Keys[0] < b.Keys[0]
	})
}

// MultiKey filters to clusters with more than one setting — the clusters
// Table II of the paper evaluates.
func MultiKey(clusters []Cluster) []Cluster {
	out := make([]Cluster, 0, len(clusters))
	for _, cl := range clusters {
		if cl.Size() > 1 {
			out = append(out, cl)
		}
	}
	return out
}

// AverageSize returns the mean cluster size (Fig 3 of the paper); 0 for an
// empty slice.
func AverageSize(clusters []Cluster) float64 {
	if len(clusters) == 0 {
		return 0
	}
	total := 0
	for _, cl := range clusters {
		total += cl.Size()
	}
	return float64(total) / float64(len(clusters))
}
