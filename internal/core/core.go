// Package core implements Ocasta's primary contribution: statistical
// clustering of related configuration settings from black-box observations
// of an application's writes to its configuration store.
//
// The pipeline is:
//
//  1. A sliding time window turns the write stream into co-modification
//     groups (package trace).
//  2. For every pair of keys a correlation metric is computed:
//     corr(A,B) = |A∩B|/|A| + |A∩B|/|B|, where |A| counts the episodes in
//     which A was modified and |A∩B| the episodes modifying both. The
//     metric ranges over [0,2]; 2 means "always modified together".
//  3. Hierarchical agglomerative clustering merges keys using the inverse
//     correlation as distance, by default under the maximum (complete)
//     linkage criterion, stopping at a tunable distance threshold. The
//     default threshold of 0.5 corresponds to a correlation of 2.
//
// The resulting clusters are ranked for error recovery by how rarely they
// were modified: configuration settings change only when a user explicitly
// edits them, so rarely-modified clusters are the most configuration-like.
package core

import (
	"math"
	"sort"

	"ocasta/internal/trace"
)

// DefaultThreshold is the default clustering cut-off expressed as a
// distance: 1/corr with corr = 2, i.e. only keys that are always modified
// together end up clustered.
const DefaultThreshold = 0.5

// Correlation computes the paper's pairwise correlation metric from episode
// counts: co co-modifications of two keys individually modified a and b
// times. The result is in [0,2] and is 0 when either key has no episodes.
func Correlation(co, a, b int) float64 {
	if a <= 0 || b <= 0 || co <= 0 {
		return 0
	}
	return float64(co)/float64(a) + float64(co)/float64(b)
}

// DistanceFromCorrelation converts a correlation into a clustering distance.
// Higher correlation means smaller distance; zero correlation is infinitely
// far apart so never-co-modified keys can never merge.
func DistanceFromCorrelation(corr float64) float64 {
	if corr <= 0 {
		return math.Inf(1)
	}
	return 1 / corr
}

// ThresholdFromCorrelation converts a user-facing correlation threshold
// (the paper's tunable, 0 < c <= 2) into the distance cut-off used by HAC.
func ThresholdFromCorrelation(corr float64) float64 {
	return DistanceFromCorrelation(corr)
}

// PairStats aggregates co-modification episode counts for the keys seen in
// a window-grouped write stream. It is the input to clustering.
//
// PairStats is incremental: NewPairStats(nil) yields an empty accumulator
// and Add folds in one group at a time, so a streaming windower can feed
// it without ever materialising the group slice. Keys are interned into a
// growable symbol table on first sight; pair counts live in an
// open-addressed table keyed by the packed id pair (see pairCounter) —
// the batch pipeline's map[pair]int here was the hottest allocation site
// of the whole analytics path.
//
// Internally ids follow interning (arrival) order, but every clustering-
// facing accessor works in *sorted-key* id space through a lazily
// maintained permutation, so dendrograms, tie-breaks, and node ids are
// bit-identical to building the stats from scratch over sorted keys.
// PairStats is not safe for concurrent use.
type PairStats struct {
	syms   []string       // interned id -> key name, in first-seen order
	index  map[string]int // key name -> interned id
	ep     []int          // per interned id: episodes (groups) touching it
	co     *pairCounter   // packed interned-id pair -> co-episode count
	last   []int64        // per interned id: UnixNano of most recent episode
	groups int

	// perm/inv map sorted-id space (what HAC sees) to interned-id space.
	// They are rebuilt only when the key universe grew — counts changing
	// never invalidates them, which is what keeps periodic reclustering
	// of a stable universe cheap.
	perm []int // sorted id -> interned id
	inv  []int // interned id -> sorted id

	scratch []int // Add's group id buffer, reused across calls
}

// NewPairStats builds pair statistics from co-modification groups.
// NewPairStats(nil) returns an empty accumulator for incremental use.
func NewPairStats(groups []trace.Group) *PairStats {
	ps := &PairStats{
		index: make(map[string]int),
		co:    newPairCounter(),
	}
	for _, g := range groups {
		ps.Add(g)
	}
	return ps
}

// intern returns the id of key, assigning the next id on first sight.
func (ps *PairStats) intern(key string) int {
	if id, ok := ps.index[key]; ok {
		return id
	}
	id := len(ps.syms)
	ps.syms = append(ps.syms, key)
	ps.index[key] = id
	ps.ep = append(ps.ep, 0)
	ps.last = append(ps.last, 0)
	return id
}

// Add folds one co-modification group into the statistics. Duplicate keys
// within the group are deduped: a repeated key would otherwise
// double-count its episode and insert a self-pair into the co-modification
// counts, silently inflating correlations.
func (ps *PairStats) Add(g trace.Group) {
	ids := ps.scratch[:0]
	for _, k := range g.Keys {
		ids = append(ids, ps.intern(k))
	}
	sort.Ints(ids)
	// In-place dedupe of the sorted ids.
	w := 0
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			ids[w] = id
			w++
		}
	}
	ids = ids[:w]
	end := g.End.UnixNano()
	for i, a := range ids {
		ps.ep[a]++
		if end > ps.last[a] {
			ps.last[a] = end
		}
		for _, b := range ids[i+1:] {
			ps.co.incr(packPair(a, b))
		}
	}
	ps.scratch = ids
	ps.groups++
}

// ensureSorted (re)builds the sorted-id permutation after the key universe
// grew. Counts changing does not invalidate it, so the length check is an
// exact staleness test.
func (ps *PairStats) ensureSorted() {
	if len(ps.perm) == len(ps.syms) {
		return
	}
	ps.perm = make([]int, len(ps.syms))
	for i := range ps.perm {
		ps.perm[i] = i
	}
	sort.Slice(ps.perm, func(i, j int) bool { return ps.syms[ps.perm[i]] < ps.syms[ps.perm[j]] })
	ps.inv = make([]int, len(ps.syms))
	for s, id := range ps.perm {
		ps.inv[id] = s
	}
}

// Keys returns the distinct keys observed, sorted.
func (ps *PairStats) Keys() []string {
	ps.ensureSorted()
	out := make([]string, len(ps.syms))
	for i, id := range ps.perm {
		out[i] = ps.syms[id]
	}
	return out
}

// NumKeys returns how many distinct keys were observed.
func (ps *PairStats) NumKeys() int { return len(ps.syms) }

// NumPairs returns how many distinct key pairs were ever co-modified.
func (ps *PairStats) NumPairs() int { return ps.co.len() }

// NumGroups returns how many co-modification episodes were observed.
func (ps *PairStats) NumGroups() int { return ps.groups }

// Episodes returns the number of modification episodes of key, or 0 if the
// key was never modified.
func (ps *PairStats) Episodes(key string) int {
	if i, ok := ps.index[key]; ok {
		return ps.ep[i]
	}
	return 0
}

// CoEpisodes returns the number of episodes in which both keys were
// modified together.
func (ps *PairStats) CoEpisodes(a, b string) int {
	ia, ok := ps.index[a]
	if !ok {
		return 0
	}
	ib, ok := ps.index[b]
	if !ok || ia == ib {
		return 0
	}
	return ps.co.get(packPair(ia, ib))
}

// KeyCorrelation returns the correlation between two named keys.
func (ps *PairStats) KeyCorrelation(a, b string) float64 {
	ia, ok := ps.index[a]
	if !ok {
		return 0
	}
	ib, ok := ps.index[b]
	if !ok || ia == ib {
		return 0
	}
	return Correlation(ps.co.get(packPair(ia, ib)), ps.ep[ia], ps.ep[ib])
}

// correlationByIndex is the internal fast path used by HAC. i and j are
// sorted-space ids.
func (ps *PairStats) correlationByIndex(i, j int) float64 {
	a, b := ps.perm[i], ps.perm[j]
	return Correlation(ps.co.get(packPair(a, b)), ps.ep[a], ps.ep[b])
}

// keyBySorted returns the key name of a sorted-space id.
func (ps *PairStats) keyBySorted(i int) string { return ps.syms[ps.perm[i]] }

// fillLeafStats copies per-key episode counts and last-modification times
// into sorted-space-indexed slices (the per-leaf statistics a dendrogram
// or cluster carries).
func (ps *PairStats) fillLeafStats(mod []int, last []int64) {
	ps.ensureSorted()
	for i, id := range ps.perm {
		mod[i] = ps.ep[id]
		last[i] = ps.last[id]
	}
}

// adjacency returns, per sorted-space key id, the set of neighbours with
// non-zero co-modification counts. HAC decomposes over the connected
// components of this graph: keys in different components are at infinite
// distance and can never merge under any linkage.
func (ps *PairStats) adjacency() [][]int {
	ps.ensureSorted()
	adj := make([][]int, len(ps.syms))
	ps.co.forEach(func(k uint64, _ int) {
		lo, hi := unpackPair(k)
		a, b := ps.inv[lo], ps.inv[hi]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	})
	return adj
}

// components returns the connected components of the co-modification graph
// described by adj (as built by adjacency), each sorted, in deterministic
// (smallest-member) order. Ids are sorted-space.
func (ps *PairStats) components(adj [][]int) [][]int {
	seen := make([]bool, len(ps.syms))
	var comps [][]int
	for start := range adj {
		if seen[start] {
			continue
		}
		comp := []int{start}
		seen[start] = true
		for frontier := []int{start}; len(frontier) > 0; {
			next := frontier[0]
			frontier = frontier[1:]
			for _, nb := range adj[next] {
				if !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
					frontier = append(frontier, nb)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}
