// Package core implements Ocasta's primary contribution: statistical
// clustering of related configuration settings from black-box observations
// of an application's writes to its configuration store.
//
// The pipeline is:
//
//  1. A sliding time window turns the write stream into co-modification
//     groups (package trace).
//  2. For every pair of keys a correlation metric is computed:
//     corr(A,B) = |A∩B|/|A| + |A∩B|/|B|, where |A| counts the episodes in
//     which A was modified and |A∩B| the episodes modifying both. The
//     metric ranges over [0,2]; 2 means "always modified together".
//  3. Hierarchical agglomerative clustering merges keys using the inverse
//     correlation as distance, by default under the maximum (complete)
//     linkage criterion, stopping at a tunable distance threshold. The
//     default threshold of 0.5 corresponds to a correlation of 2.
//
// The resulting clusters are ranked for error recovery by how rarely they
// were modified: configuration settings change only when a user explicitly
// edits them, so rarely-modified clusters are the most configuration-like.
package core

import (
	"math"
	"sort"

	"ocasta/internal/trace"
)

// DefaultThreshold is the default clustering cut-off expressed as a
// distance: 1/corr with corr = 2, i.e. only keys that are always modified
// together end up clustered.
const DefaultThreshold = 0.5

// Correlation computes the paper's pairwise correlation metric from episode
// counts: co co-modifications of two keys individually modified a and b
// times. The result is in [0,2] and is 0 when either key has no episodes.
func Correlation(co, a, b int) float64 {
	if a <= 0 || b <= 0 || co <= 0 {
		return 0
	}
	return float64(co)/float64(a) + float64(co)/float64(b)
}

// DistanceFromCorrelation converts a correlation into a clustering distance.
// Higher correlation means smaller distance; zero correlation is infinitely
// far apart so never-co-modified keys can never merge.
func DistanceFromCorrelation(corr float64) float64 {
	if corr <= 0 {
		return math.Inf(1)
	}
	return 1 / corr
}

// ThresholdFromCorrelation converts a user-facing correlation threshold
// (the paper's tunable, 0 < c <= 2) into the distance cut-off used by HAC.
func ThresholdFromCorrelation(corr float64) float64 {
	return DistanceFromCorrelation(corr)
}

// PairStats aggregates co-modification episode counts for the keys seen in
// a window-grouped write stream. It is the input to clustering.
type PairStats struct {
	keys    []string       // index -> key name, sorted for determinism
	index   map[string]int // key name -> index
	epCount []int          // per-key number of episodes (groups) touching it
	co      map[pairKey]int
	last    []int64 // per-key UnixNano of most recent episode
	groups  int
}

type pairKey struct{ lo, hi int }

func mkPair(i, j int) pairKey {
	if i > j {
		i, j = j, i
	}
	return pairKey{lo: i, hi: j}
}

// NewPairStats builds pair statistics from co-modification groups.
func NewPairStats(groups []trace.Group) *PairStats {
	keySet := make(map[string]struct{})
	for _, g := range groups {
		for _, k := range g.Keys {
			keySet[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	index := make(map[string]int, len(keys))
	for i, k := range keys {
		index[k] = i
	}
	ps := &PairStats{
		keys:    keys,
		index:   index,
		epCount: make([]int, len(keys)),
		co:      make(map[pairKey]int),
		last:    make([]int64, len(keys)),
		groups:  len(groups),
	}
	for _, g := range groups {
		// Dedupe within the group: callers may hand NewPairStats arbitrary
		// groups, and a repeated key would otherwise double-count its
		// episode and insert a self-pair into the co-modification counts,
		// silently inflating correlations.
		ids := make([]int, 0, len(g.Keys))
		seen := make(map[int]struct{}, len(g.Keys))
		for _, k := range g.Keys {
			id := index[k]
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
		end := g.End.UnixNano()
		for i, a := range ids {
			ps.epCount[a]++
			if end > ps.last[a] {
				ps.last[a] = end
			}
			for _, b := range ids[i+1:] {
				ps.co[mkPair(a, b)]++
			}
		}
	}
	return ps
}

// Keys returns the distinct keys observed, sorted.
func (ps *PairStats) Keys() []string {
	out := make([]string, len(ps.keys))
	copy(out, ps.keys)
	return out
}

// NumKeys returns how many distinct keys were observed.
func (ps *PairStats) NumKeys() int { return len(ps.keys) }

// NumGroups returns how many co-modification episodes were observed.
func (ps *PairStats) NumGroups() int { return ps.groups }

// Episodes returns the number of modification episodes of key, or 0 if the
// key was never modified.
func (ps *PairStats) Episodes(key string) int {
	if i, ok := ps.index[key]; ok {
		return ps.epCount[i]
	}
	return 0
}

// CoEpisodes returns the number of episodes in which both keys were
// modified together.
func (ps *PairStats) CoEpisodes(a, b string) int {
	ia, ok := ps.index[a]
	if !ok {
		return 0
	}
	ib, ok := ps.index[b]
	if !ok || ia == ib {
		return 0
	}
	return ps.co[mkPair(ia, ib)]
}

// KeyCorrelation returns the correlation between two named keys.
func (ps *PairStats) KeyCorrelation(a, b string) float64 {
	ia, ok := ps.index[a]
	if !ok {
		return 0
	}
	ib, ok := ps.index[b]
	if !ok || ia == ib {
		return 0
	}
	return Correlation(ps.co[mkPair(ia, ib)], ps.epCount[ia], ps.epCount[ib])
}

// correlationByIndex is the internal fast path used by HAC.
func (ps *PairStats) correlationByIndex(i, j int) float64 {
	return Correlation(ps.co[mkPair(i, j)], ps.epCount[i], ps.epCount[j])
}

// adjacency returns, per key index, the set of neighbours with non-zero
// co-modification counts. HAC decomposes over the connected components of
// this graph: keys in different components are at infinite distance and can
// never merge under any linkage.
func (ps *PairStats) adjacency() [][]int {
	adj := make([][]int, len(ps.keys))
	for pk := range ps.co {
		adj[pk.lo] = append(adj[pk.lo], pk.hi)
		adj[pk.hi] = append(adj[pk.hi], pk.lo)
	}
	return adj
}

// components returns the connected components of the co-modification graph
// described by adj (as built by adjacency), each sorted, in deterministic
// (smallest-member) order.
func (ps *PairStats) components(adj [][]int) [][]int {
	seen := make([]bool, len(ps.keys))
	var comps [][]int
	for start := range ps.keys {
		if seen[start] {
			continue
		}
		comp := []int{start}
		seen[start] = true
		for frontier := []int{start}; len(frontier) > 0; {
			next := frontier[0]
			frontier = frontier[1:]
			for _, nb := range adj[next] {
				if !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
					frontier = append(frontier, nb)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}
