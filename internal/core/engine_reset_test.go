package core

import (
	"fmt"
	"testing"
	"time"

	"ocasta/internal/trace"
)

// TestEngineReset: after Reset the engine is statistically empty (fresh
// publish), and re-feeding the same stream reproduces the original
// clustering exactly — no double counting of pre-reset history, which is
// what a read replica relies on across a full resync.
func TestEngineReset(t *testing.T) {
	feed := func(e *Engine) {
		base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 5; i++ {
			ts := base.Add(time.Duration(i) * 10 * time.Second)
			for _, k := range []string{"pair/a", "pair/b"} {
				e.Push(trace.Event{Time: ts, Op: trace.OpWrite, Key: k, Value: fmt.Sprintf("v%d", i)})
			}
			e.Push(trace.Event{Time: ts.Add(3 * time.Second), Op: trace.OpWrite, Key: "solo", Value: "x"})
		}
		e.Flush()
	}

	e := NewEngine(EngineConfig{})
	feed(e)
	first := e.Recluster()
	if len(first) == 0 || e.NumKeys() == 0 {
		t.Fatalf("seed clustering empty: %d clusters, %d keys", len(first), e.NumKeys())
	}
	v1 := e.Version()

	e.Reset()
	if e.NumKeys() != 0 || e.NumGroups() != 0 {
		t.Fatalf("after Reset: %d keys, %d groups; want 0, 0", e.NumKeys(), e.NumGroups())
	}
	if got := e.Clusters(); len(got) != 0 {
		t.Fatalf("after Reset: %d published clusters, want 0", len(got))
	}
	if e.Version() <= v1 {
		t.Fatalf("Reset must advance the publish counter: %d -> %d", v1, e.Version())
	}
	if corr := e.Correlation("pair/a", "pair/b"); corr != 0 {
		t.Fatalf("stale correlation %v survived Reset", corr)
	}

	feed(e)
	second := e.Recluster()
	if len(second) != len(first) {
		t.Fatalf("re-fed clustering has %d clusters, want %d", len(second), len(first))
	}
	for i := range first {
		a, b := &first[i], &second[i]
		if a.ModCount != b.ModCount || len(a.Keys) != len(b.Keys) || !a.LastModified.Equal(b.LastModified) {
			t.Fatalf("cluster %d differs after reset+refeed: %+v vs %+v", i, a, b)
		}
		for j := range a.Keys {
			if a.Keys[j] != b.Keys[j] {
				t.Fatalf("cluster %d key %d: %q vs %q", i, j, a.Keys[j], b.Keys[j])
			}
		}
	}
}
