package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ocasta/internal/trace"
)

// canonical renders a partition as a comparable string.
func canonical(clusters []Cluster) string {
	parts := make([]string, len(clusters))
	for i, c := range clusters {
		parts[i] = strings.Join(c.Keys, ",")
	}
	return strings.Join(parts, "|")
}

// randomGroups produces a varied co-modification structure: chains (sparse
// connected components), cliques (dense components), random subsets, and
// repeated groups so tied correlations — the hard case for HAC
// equivalence — are common.
func randomGroups(rng *rand.Rand) []trace.Group {
	nKeys := rng.Intn(38) + 2
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	var lists [][]string
	nGroups := rng.Intn(40) + 1
	for g := 0; g < nGroups; g++ {
		switch rng.Intn(4) {
		case 0: // chain link: two adjacent keys
			i := rng.Intn(nKeys)
			j := (i + 1) % nKeys
			lists = append(lists, []string{keys[i], keys[j]})
		case 1: // small clique
			size := rng.Intn(4) + 2
			start := rng.Intn(nKeys)
			cl := make([]string, 0, size)
			for s := 0; s < size; s++ {
				cl = append(cl, keys[(start+s)%nKeys])
			}
			lists = append(lists, cl)
		case 2: // random subset
			var sub []string
			for _, k := range keys {
				if rng.Intn(6) == 0 {
					sub = append(sub, k)
				}
			}
			if len(sub) == 0 {
				sub = []string{keys[rng.Intn(nKeys)]}
			}
			lists = append(lists, sub)
		default: // repeat an earlier group to force exact tied correlations
			if len(lists) > 0 {
				lists = append(lists, lists[rng.Intn(len(lists))])
			} else {
				lists = append(lists, []string{keys[0]})
			}
		}
	}
	return groupsOf(lists...)
}

// TestChainMatchesNaiveProperty is the equivalence property test: across
// random co-modification graphs (sparse and dense), all three linkages,
// random and boundary thresholds, both distance representations, and the
// parallel path, the nearest-neighbour-chain clusterer must produce the
// same flat partitions as the naive closest-pair reference.
func TestChainMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42)) // fixed seed: deterministic cases
	linkages := []Linkage{LinkageComplete, LinkageSingle, LinkageAverage}
	for iter := 0; iter < 1000; iter++ {
		groups := randomGroups(rng)
		ps := NewPairStats(groups)
		link := linkages[iter%3]
		thresholds := []float64{
			DefaultThreshold,
			1,
			math.Inf(1),
			0.25 + rng.Float64()*1.75,
		}
		want := make([]string, len(thresholds))
		naive := NewClusterer(link)
		for ti, th := range thresholds {
			want[ti] = canonical(naive.clusterNaive(ps, th))
		}
		for _, mode := range []uint8{distModeDense, distModeSparse} {
			for _, par := range []int{1, 4} {
				c := NewClusterer(link).WithParallelism(par)
				c.distMode = mode
				d := c.Dendrogram(ps)
				for ti, th := range thresholds {
					got := canonical(d.Cut(th))
					if got != want[ti] {
						t.Fatalf("iter %d link %v mode %d par %d threshold %v:\nchain %s\nnaive %s",
							iter, link, mode, par, th, got, want[ti])
					}
				}
			}
		}
	}
}

// TestChainMergeHeightsMatchNaive checks the stronger dendrogram-level
// claim on distinct-distance inputs: identical merge lists, node ids
// included.
func TestChainMergeHeightsMatchNaive(t *testing.T) {
	// Distinct pairwise correlations: episode counts chosen so no two pairs
	// tie. a,b co-modified 6x; b,c 3x; c,d 2x; a alone 2x; d alone 5x.
	var lists [][]string
	add := func(n int, ks ...string) {
		for i := 0; i < n; i++ {
			lists = append(lists, ks)
		}
	}
	add(6, "a", "b")
	add(3, "b", "c")
	add(2, "c", "d")
	add(2, "a")
	add(5, "d")
	ps := NewPairStats(groupsOf(lists...))
	for _, link := range []Linkage{LinkageComplete, LinkageSingle, LinkageAverage} {
		c := NewClusterer(link)
		got := c.Dendrogram(ps).Merges()
		want := c.dendrogramNaive(ps).Merges()
		if len(got) != len(want) {
			t.Fatalf("%v: %d merges, naive %d", link, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%v merge %d: chain %+v, naive %+v", link, i, got[i], want[i])
			}
		}
	}
}

// TestChainParallelismDeterminism runs the same clustering at several
// worker counts and demands byte-identical dendrograms.
func TestChainParallelismDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := NewPairStats(randomGroups(rng))
	ref := NewClusterer(LinkageComplete).WithParallelism(1).Dendrogram(ps)
	for _, par := range []int{0, 2, 3, 8} {
		d := NewClusterer(LinkageComplete).WithParallelism(par).Dendrogram(ps)
		got, want := d.Merges(), ref.Merges()
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d merges, want %d", par, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d merge %d: %+v != %+v", par, i, got[i], want[i])
			}
		}
	}
}

// Regression: a pair whose distance exactly equals the cut threshold must
// merge under average linkage despite the fixed-point quantisation of
// average-linkage heights (the threshold is quantised identically).
func TestAverageLinkageExactThreshold(t *testing.T) {
	// a,b co-modified in 3 of 4 episodes each: corr = 3/4 + 3/4 = 1.5,
	// distance exactly 2/3.
	ps := NewPairStats(groupsOf(
		[]string{"a", "b"},
		[]string{"a", "b"},
		[]string{"a", "b"},
		[]string{"a"},
		[]string{"b"},
	))
	th := ThresholdFromCorrelation(1.5)
	c := NewClusterer(LinkageAverage)
	for name, clusters := range map[string][]Cluster{
		"chain": c.Cluster(ps, th),
		"naive": c.clusterNaive(ps, th),
	} {
		if len(clusters) != 1 || clusters[0].Size() != 2 {
			t.Errorf("%s: got %+v, want one {a,b} cluster", name, clusters)
		}
	}
}
