package core

import "math"

// This file keeps the original closest-pair HAC as a package-private
// reference implementation. It re-scans a dense k x k distance matrix to
// find the globally closest pair before every merge — O(k³) per connected
// component — and exists only so tests and benchmarks can check the
// nearest-neighbour-chain clusterer (hac.go) against it: the two must
// produce cut-equivalent partitions for every linkage and threshold.

// dendrogramNaive is the reference counterpart of Clusterer.Dendrogram. It
// uses the same per-component node-id ranges so the two merge trees are
// directly comparable, but always clusters sequentially with dense
// matrices.
func (c *Clusterer) dendrogramNaive(ps *PairStats) *Dendrogram {
	n := ps.NumKeys()
	d := &Dendrogram{
		keys:     ps.Keys(),
		linkage:  c.linkage,
		modCount: make([]int, n),
		lastMod:  make([]int64, n),
	}
	ps.fillLeafStats(d.modCount, d.lastMod)
	comps := ps.components(ps.adjacency())
	bases, nodes := componentBases(n, comps)
	d.nodes = nodes
	for i, comp := range comps {
		if len(comp) < 2 {
			continue
		}
		c.hacNaive(ps, comp, d, bases[i])
	}
	return d
}

// clusterNaive is the reference counterpart of Clusterer.Cluster.
func (c *Clusterer) clusterNaive(ps *PairStats, threshold float64) []Cluster {
	return c.dendrogramNaive(ps).Cut(threshold)
}

// hacNaive runs agglomerative clustering within one connected component
// using a full-matrix closest-pair scan per merge and a Lance-Williams
// distance-matrix update, assigning internal node ids from base.
func (c *Clusterer) hacNaive(ps *PairStats, comp []int, d *Dendrogram, base int) {
	k := len(comp)
	type active struct {
		node int // dendrogram node id
		size int // number of leaves
	}
	rows := make([]active, k)
	for i, leaf := range comp {
		rows[i] = active{node: leaf, size: 1}
	}
	// val is a symmetric k x k matrix of stored values over active rows:
	// plain distances for complete/single linkage, scaled integer
	// member-pair distance sums for average linkage (the same convention
	// as the chain clusterer's stores, so heights compare bit-exactly).
	val := make([][]float64, k)
	for i := range val {
		val[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			vv := c.linkage.storedValue(DistanceFromCorrelation(ps.correlationByIndex(comp[i], comp[j])))
			val[i][j] = vv
			val[j][i] = vv
		}
	}
	dist := func(i, j int) float64 {
		if c.linkage == LinkageAverage {
			return val[i][j] / (avgScale * float64(rows[i].size) * float64(rows[j].size))
		}
		return val[i][j]
	}
	alive := make([]bool, k)
	for i := range alive {
		alive[i] = true
	}
	nextNode := base
	remaining := k
	for remaining > 1 {
		// Find the closest live pair; ties break toward the smallest
		// indices for determinism.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < k; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < k; j++ {
				if !alive[j] {
					continue
				}
				if dd := dist(i, j); dd < best {
					bi, bj, best = i, j, dd
				}
			}
		}
		if math.IsInf(best, 1) {
			break // no finite merge remains in this component
		}
		d.merges = append(d.merges, Merge{
			A: rows[bi].node, B: rows[bj].node, Node: nextNode, Height: best,
		})
		// Fold bj into bi.
		for m := 0; m < k; m++ {
			if !alive[m] || m == bi || m == bj {
				continue
			}
			nv := c.linkage.combine(val[bi][m], val[bj][m])
			val[bi][m] = nv
			val[m][bi] = nv
		}
		rows[bi] = active{node: nextNode, size: rows[bi].size + rows[bj].size}
		alive[bj] = false
		nextNode++
		remaining--
	}
}
