package ocasta

import (
	"ocasta/internal/backup"
	"ocasta/internal/ttkvwire"
)

// Re-exported backup and disaster-recovery types.
type (
	// BackupManager takes full and incremental backups of one store into
	// one self-verifying directory, with retention pruning. Construct
	// with NewBackupManager; enable the wire commands with
	// Server.SetBackups.
	BackupManager = backup.Manager
	// BackupOptions tunes a BackupManager (record-file segment size).
	BackupOptions = backup.Options
	// BackupManifest describes one backup: identity, covered sequence
	// range, parent chain link, and checksummed record files.
	BackupManifest = backup.Manifest
	// BackupFileInfo is one record file of a backup.
	BackupFileInfo = backup.FileInfo
	// BackupReport is the result of verifying a backup directory.
	BackupReport = backup.Report
	// BackupIssue is one verification failure in a BackupReport.
	BackupIssue = backup.Issue
	// BackupPruneResult summarizes what a retention prune removed.
	BackupPruneResult = backup.PruneResult
	// BackupTarget selects the point in time a restore materializes; the
	// zero value means "latest".
	BackupTarget = backup.Target
	// BackupRestoreInfo describes what a restore replayed.
	BackupRestoreInfo = backup.RestoreInfo
	// BackupInfo is a parsed BACKUP/BSTAT reply row (Client.Backup,
	// Client.Backups).
	BackupInfo = ttkvwire.BackupInfo
)

// NewBackupManager returns a manager writing backups of store into dir,
// creating the directory if needed. Backups pin a sequence bound and
// scan under per-shard read locks, so they run against live traffic
// without blocking writers — on a primary or on a read replica.
func NewBackupManager(store *Store, dir string, opts BackupOptions) (*BackupManager, error) {
	return backup.NewManager(store, dir, opts)
}

// VerifyBackups checks every backup in dir — manifest checksums, record
// file sizes and SHA-256s, sequence-range tiling, incremental ancestry —
// without replaying any data.
func VerifyBackups(dir string) (*BackupReport, error) { return backup.VerifyDir(dir) }

// ParseBackupTarget parses a restore point: "" is latest, a bare
// decimal integer a store sequence number, anything else an RFC 3339
// timestamp.
func ParseBackupTarget(s string) (BackupTarget, error) { return backup.ParseTarget(s) }

// RestoreBackup materializes the backed-up store at target into a fresh
// in-memory store (shards 0 for the default count), replaying the
// newest intact backup chain that covers the target. The restored store
// carries the original's exact per-version histories and sequence
// numbers.
func RestoreBackup(dir string, target BackupTarget, shards int) (*Store, *BackupRestoreInfo, error) {
	return backup.Restore(dir, target, shards)
}

// RestoreBackupToAOF restores at target and writes the result as a
// fresh, atomically-published AOF at outPath — what "ttkvd restore"
// runs.
func RestoreBackupToAOF(dir string, target BackupTarget, outPath string, shards int) (*BackupRestoreInfo, error) {
	return backup.RestoreToAOF(dir, target, outPath, shards)
}
