package ocasta

import (
	"fmt"
	"testing"
	"time"
)

// TestOpenStoreSegmented: OpenStore with AOFDir assembles the segmented
// pipeline — writes persist across a close/reopen cycle, and the handle
// exposes the segment directory for replication catch-up.
func TestOpenStoreSegmented(t *testing.T) {
	dir := t.TempDir()
	open := func(compact bool) *StoreHandle {
		t.Helper()
		h, err := OpenStore(StoreOptions{
			AOFDir:       dir,
			SegmentBytes: 256, // tiny segments so a handful of writes rolls
			Compact:      compact,
			Fsync:        FsyncAlways,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := open(false)
	if h.Segments == nil {
		t.Fatal("StoreHandle.Segments is nil with AOFDir set")
	}
	for i := 0; i < 40; i++ {
		ts := t0.Add(time.Duration(i) * time.Second)
		if err := h.Store.Set("/seg/key", fmt.Sprintf("v%d", i), ts); err != nil {
			t.Fatal(err)
		}
		// Sync to bound the group-commit batch: a batch lands in one
		// segment whole, so rolling needs batch boundaries to act on.
		if i%5 == 4 {
			if err := h.Store.SyncAOF(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.Store.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if st := h.Segments.Stats(); st.Sealed == 0 {
		t.Fatalf("stats = %+v, want at least one sealed segment", st)
	}

	h2 := open(false)
	defer h2.Close() //nolint:errcheck
	if got, ok := h2.Store.Get("/seg/key"); !ok || got != "v39" {
		t.Fatalf("after reopen Get = %q, %v", got, ok)
	}
	if hist, err := h2.Store.History("/seg/key"); err != nil || len(hist) != 40 {
		t.Fatalf("history = %d versions, %v, want 40", len(hist), err)
	}
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}

	// Compacting on open keeps only the retained history.
	h3, err := OpenStore(StoreOptions{AOFDir: dir, SegmentBytes: 256, Compact: true, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Close() //nolint:errcheck
	if got, ok := h3.Store.Get("/seg/key"); !ok || got != "v39" {
		t.Fatalf("after compaction Get = %q, %v", got, ok)
	}
	if hist, err := h3.Store.History("/seg/key"); err != nil || len(hist) != 1 {
		t.Fatalf("history after Retain:1 = %d versions, %v, want 1", len(hist), err)
	}

	// The exclusivity and dependency guards reject bad combinations.
	if _, err := OpenStore(StoreOptions{AOFPath: dir + "/f.aof", AOFDir: dir}); err == nil {
		t.Fatal("AOFPath+AOFDir accepted")
	}
	if _, err := OpenStore(StoreOptions{Compact: true}); err == nil {
		t.Fatal("Compact without a backing path accepted")
	}
}
