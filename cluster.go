package ocasta

import (
	"context"
	"fmt"
	"time"

	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
)

// This file is the consolidated entry point to the store and cluster
// APIs: OpenStore replaces the NewStore / LoadStore / AOF / GroupCommit /
// ReplLog assembly dance with one call, and DialCluster replaces Dial
// for anything beyond a single fixed node. The older piecewise
// constructors remain for compatibility; the redundant ones are marked
// Deprecated below.

// Typed wire errors, re-exported so callers can match cluster redirects
// with errors.Is / errors.As instead of message substrings.
var (
	// ErrReadOnly reports a write sent to a read replica.
	ErrReadOnly = ttkvwire.ErrReadOnly
	// ErrRetryable reports a transiently failed write (e.g. semi-sync
	// acknowledgement timeout: applied locally, replication unconfirmed).
	ErrRetryable = ttkvwire.ErrRetryable
	// ErrKeyNotFound reports a read of an absent or deleted key.
	ErrKeyNotFound = ttkvwire.ErrNotFound
)

// Re-exported failover and topology types.
type (
	// ErrNotLeader is a write rejection carrying the current leader's
	// address (a MOVED redirect); it unwraps to ErrReadOnly.
	ErrNotLeader = ttkvwire.ErrNotLeader
	// Topology is a TOPO reply: one node's role, epoch, and peer view.
	Topology = ttkvwire.Topology
	// FailoverClient is a cluster-aware client: it discovers the primary,
	// follows redirects, and retries across failovers. Construct with
	// DialCluster.
	FailoverClient = ttkvwire.FailoverClient
	// FailoverOption configures DialCluster.
	FailoverOption = ttkvwire.FailoverOption
	// Node is the failover state machine run next to a Server on every
	// cluster member. Construct with StartNode.
	Node = ttkvwire.Node
	// NodeConfig configures a failover Node.
	NodeConfig = ttkvwire.NodeConfig
	// SemiSyncConfig makes a primary's write acks wait for replica acks.
	SemiSyncConfig = ttkvwire.SemiSyncConfig
)

// Failover client options, re-exported from ttkvwire.
var (
	// WithPeers seeds the cluster member list (required).
	WithPeers = ttkvwire.WithPeers
	// WithDialTimeout bounds each connection attempt.
	WithDialTimeout = ttkvwire.WithDialTimeout
	// WithCallTimeout bounds each round trip.
	WithCallTimeout = ttkvwire.WithCallTimeout
	// WithSemiSync requires k replica acks per write.
	WithSemiSync = ttkvwire.WithSemiSync
	// WithMaxRedirects bounds redirect/rediscovery hops per operation.
	WithMaxRedirects = ttkvwire.WithMaxRedirects
	// WithRetryBackoff sets the pause between failover retries.
	WithRetryBackoff = ttkvwire.WithRetryBackoff
	// WithLogf routes client diagnostics to a printf-style function.
	WithLogf = ttkvwire.WithLogf
)

// Hash-slot partitioning types, re-exported from ttkvwire. A
// multi-primary cluster splits a fixed slot space across its nodes
// (Server.EnableCluster / the daemon's -slot-range flag); keyed requests
// for foreign slots come back as ErrNotLeader redirects naming the
// owner, which FailoverClient follows automatically.
type (
	// SlotRange is a contiguous run of hash slots [Lo, Hi] owned by Addr.
	SlotRange = ttkvwire.SlotRange
	// MigrateOptions configure MigrateSlot.
	MigrateOptions = ttkvwire.MigrateOptions
	// ErrPartialApply reports a batched write that landed only partially
	// (Applied counts the mutations that did).
	ErrPartialApply = ttkvwire.ErrPartialApply
	// AnalyticsDrainer merges every cluster node's replication stream
	// into one analytics engine by event time, yielding globally-correct
	// CLUSTERS/CORR on a partitioned keyspace. Construct with
	// NewAnalyticsDrainer.
	AnalyticsDrainer = ttkvwire.AnalyticsDrainer
	// AnalyticsDrainerConfig configures an AnalyticsDrainer.
	AnalyticsDrainerConfig = ttkvwire.AnalyticsDrainerConfig
)

// DefaultSlotCount is the default hash-slot space size.
const DefaultSlotCount = ttkv.DefaultSlotCount

// KeySlot maps a key to its hash slot in a slot space of the given size
// (<= 0 selects DefaultSlotCount). Keys sharing a "{...}" hash tag share
// a slot, so multi-key batches can be kept single-node.
func KeySlot(key string, slots int) int { return ttkv.KeySlot(key, slots) }

// ParseSlotRanges parses comma-separated "lo-hi[=addr]" tokens (single
// slots may omit "-hi") against a slot space of the given size.
func ParseSlotRanges(s string, slots int) ([]SlotRange, error) {
	return ttkvwire.ParseSlotRanges(s, slots)
}

// MigrateSlot rehomes one hash slot between two live primaries without
// losing acked writes; killed at any point, a rerun converges. See the
// ttkvd migrate subcommand for the operator form.
func MigrateSlot(ctx context.Context, source, target string, slot int, opts MigrateOptions) error {
	return ttkvwire.MigrateSlot(ctx, source, target, slot, opts)
}

// NewAnalyticsDrainer returns a drainer feeding cfg.Engine from the
// replication streams of cfg.Peers.
func NewAnalyticsDrainer(cfg AnalyticsDrainerConfig) (*AnalyticsDrainer, error) {
	return ttkvwire.NewAnalyticsDrainer(cfg)
}

// DrainAnalytics performs one complete drain of the peers' histories
// into engine — the one-shot way to rebuild a cluster's global analytics
// from scratch.
func DrainAnalytics(ctx context.Context, engine *Engine, peers []string) error {
	return ttkvwire.DrainAnalytics(ctx, engine, peers)
}

// DialCluster connects to a TTKV cluster: it discovers the current
// primary via TOPO, follows MOVED redirects, reconnects across
// promotions, and retries transient errors, so a failover surfaces to
// callers as latency rather than an error. Against a slot-partitioned
// cluster it additionally routes each keyed operation to the slot's
// owner, splitting multi-key batches across nodes as needed.
func DialCluster(ctx context.Context, opts ...FailoverOption) (*FailoverClient, error) {
	return ttkvwire.DialCluster(ctx, opts...)
}

// StartNode starts the failover state machine for one cluster member:
// lease-based failure detection over the replication stream, election of
// the highest-applied replica, epoch fencing of stale primaries.
func StartNode(cfg NodeConfig) (*Node, error) { return ttkvwire.StartNode(cfg) }

// StoreOptions configures OpenStore. The zero value opens an empty
// in-memory store with the default shard count.
type StoreOptions struct {
	// Shards is the lock-shard count (rounded up to a power of two;
	// default ttkv.DefaultShards). Writers to distinct keys on distinct
	// shards never contend.
	Shards int

	// AOFPath, when set, backs the store with an append-only file:
	// existing history is replayed on open (a crash-truncated tail is
	// repaired) and every write is appended through a group-commit
	// batcher.
	AOFPath string
	// AOFDir, when set, backs the store with a segmented append-only
	// directory instead of a single file: sealed segments replay in
	// parallel on open and compaction swaps whole segments. Mutually
	// exclusive with AOFPath.
	AOFDir string
	// SegmentBytes is the per-segment size threshold for AOFDir
	// (default ttkv.DefaultSegmentBytes).
	SegmentBytes int64
	// Compact rewrites the AOF as an atomic snapshot after replay.
	Compact bool
	// Retain, with Compact, keeps only the newest N versions per key
	// (0 keeps all).
	Retain int
	// Fsync selects the AOF fsync policy (default FsyncInterval) and
	// FlushInterval the group-commit cadence (default 50ms).
	Fsync         FsyncPolicy
	FlushInterval time.Duration

	// Replicate attaches a replication log so the store can feed
	// replicas (serve it with Server.EnableReplication or run it under a
	// failover Node). The log wraps the AOF appender when AOFPath is
	// set. Leave false for a store that will itself be a replica.
	Replicate bool

	// Observer, when set, receives every mutation — including the AOF
	// replay — e.g. an *Engine for live clustering.
	Observer StatsObserver
}

// StoreHandle is an opened store plus the durability and replication
// plumbing OpenStore assembled around it.
type StoreHandle struct {
	// Store is the opened store.
	Store *Store
	// ReplLog is the attached replication log (nil unless Replicate).
	ReplLog *ReplLog
	// GroupCommit is the AOF batch appender (nil without AOFPath or
	// AOFDir). Close the handle, not this, when done.
	GroupCommit *GroupCommit
	// Segments is the segmented appender (nil unless AOFDir). Pass it to
	// a replication server so replica catch-up reads sealed segments
	// instead of scanning in-memory history.
	Segments *SegmentedAOF
}

// Close drains and closes the durability pipeline. The store itself
// remains readable.
func (h *StoreHandle) Close() error {
	if h.GroupCommit != nil {
		return h.GroupCommit.Close()
	}
	return nil
}

// OpenStore opens a TTKV store in one call: shard it, replay and attach
// its append-only file, optionally compact, and optionally attach the
// replication log — the assembly every daemon and test was previously
// doing by hand.
func OpenStore(opts StoreOptions) (*StoreHandle, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = ttkv.DefaultShards
	}
	store := ttkv.NewSharded(shards)
	if opts.AOFPath != "" && opts.AOFDir != "" {
		return nil, fmt.Errorf("ocasta: AOFPath and AOFDir are mutually exclusive")
	}
	if opts.Observer != nil && opts.AOFDir == "" {
		// Attached before replay so restored history feeds the observer
		// exactly like fresh writes would. Segmented replay runs segments
		// in parallel and bypasses observers, so the AOFDir path instead
		// backfills after replay (below).
		store.SetStatsObserver(opts.Observer)
	}
	h := &StoreHandle{Store: store}
	if opts.AOFDir != "" {
		segCfg := ttkv.SegmentedConfig{MaxSegmentBytes: opts.SegmentBytes}
		if opts.Compact {
			if err := ttkv.CompactSegmentDir(opts.AOFDir, shards, opts.Retain, segCfg); err != nil {
				return nil, fmt.Errorf("ocasta: compacting segment dir: %w", err)
			}
		}
		sa, err := ttkv.OpenSegmentedInto(opts.AOFDir, store, segCfg)
		if err != nil {
			return nil, fmt.Errorf("ocasta: replaying segment dir: %w", err)
		}
		if opts.Observer != nil {
			store.ObserveHistory(opts.Observer)
			store.SetStatsObserver(opts.Observer)
		}
		h.Segments = sa
		h.GroupCommit = ttkv.NewGroupCommit(sa, ttkv.GroupCommitConfig{
			FlushInterval: opts.FlushInterval,
			Fsync:         opts.Fsync,
		})
	} else if opts.AOFPath != "" {
		aof, err := ttkv.OpenAOFInto(opts.AOFPath, store)
		if err != nil {
			return nil, fmt.Errorf("ocasta: replaying AOF: %w", err)
		}
		if opts.Compact {
			// Compaction rewrites the file by rename: drop the open
			// handle first, reopen the fresh snapshot for appending.
			if err := aof.Close(); err != nil {
				return nil, err
			}
			if err := store.CompactTo(opts.AOFPath, opts.Retain); err != nil {
				return nil, fmt.Errorf("ocasta: compacting AOF: %w", err)
			}
			if aof, err = ttkv.OpenAOFForAppend(opts.AOFPath); err != nil {
				return nil, err
			}
		}
		h.GroupCommit = ttkv.NewGroupCommit(aof, ttkv.GroupCommitConfig{
			FlushInterval: opts.FlushInterval,
			Fsync:         opts.Fsync,
		})
	} else if opts.Compact || opts.Retain > 0 {
		return nil, fmt.Errorf("ocasta: Compact/Retain require AOFPath or AOFDir")
	}
	if opts.Replicate {
		h.ReplLog = ttkv.NewReplLog(h.GroupCommit)
		if err := store.AttachReplLog(h.ReplLog); err != nil {
			return nil, err
		}
	} else if h.GroupCommit != nil {
		store.AttachGroupCommit(h.GroupCommit)
	}
	return h, nil
}
