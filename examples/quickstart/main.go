// Quickstart: feed Ocasta a write stream and get clusters of related
// configuration settings back.
package main

import (
	"fmt"
	"time"

	"ocasta"
)

func main() {
	base := time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

	// The application persists "mark_seen" and "mark_seen_timeout"
	// together whenever the user touches the preferences dialog; the
	// window geometry changes on its own.
	var events []ocasta.Event
	write := func(t time.Time, key, value string) {
		events = append(events, ocasta.Event{
			Time: t, Op: ocasta.OpWrite, Store: ocasta.StoreGConf,
			App: "evolution", Key: key, Value: value,
		})
	}
	for day := 0; day < 3; day++ {
		t := base.Add(time.Duration(day) * 24 * time.Hour)
		write(t, "/apps/evolution/mail/mark_seen", "b:true")
		write(t, "/apps/evolution/mail/mark_seen_timeout", fmt.Sprintf("i:%d", 1000+day*500))
		write(t.Add(3*time.Hour), "/apps/evolution/ui/window_geometry", fmt.Sprintf("s:800x%d", 600+day))
	}

	clusters := ocasta.ClusterEvents(events, ocasta.Config{}) // paper defaults
	ocasta.SortForRecovery(clusters)

	fmt.Printf("found %d clusters (%d multi-setting)\n",
		len(clusters), len(ocasta.MultiKey(clusters)))
	for _, c := range clusters {
		fmt.Printf("  modified %d times: %v\n", c.ModCount, c.Keys)
	}
}
