// wordrecents reproduces the paper's Fig 1a narrative: Microsoft Word's
// "Max Display" setting governs the "Item N" recently-used-document slots.
// The example records Word's registry traffic through the interception
// logger, then shows why the default clustering threshold splits the
// dominant setting from the items — and how the paper's error-#2 tuning
// (threshold 1, 30-second window) reunites them.
package main

import (
	"fmt"
	"time"

	"ocasta"
	"ocasta/internal/registry"
)

func main() {
	base := time.Date(2013, 6, 1, 9, 0, 0, 0, time.UTC)
	store := ocasta.NewStore()
	logger := ocasta.NewLogger(store, ocasta.WithTraceRecording("word-machine"))

	reg := registry.New()
	detach := reg.Attach(logger.RegistryHook())
	defer detach()
	word := reg.Session("msword")

	const dataKey = `HKCU\Software\Microsoft\Office\12.0\Word\Data`

	// Day 0: the user sets the preference; Word persists Max Display and
	// the items together.
	t := base
	check(word.SetValue(dataKey+`\Settings`, "Max Display", registry.DWordValue(4), t))
	for i := 1; i <= 4; i++ {
		check(word.SetValue(dataKey+`\MRU`, fmt.Sprintf("Item %d", i),
			registry.String(fmt.Sprintf("report-%d.docx", i)), t))
	}
	// Days 1..5: documents are opened; only the items rotate.
	for day := 1; day <= 5; day++ {
		t = base.Add(time.Duration(day) * 24 * time.Hour)
		for i := 1; i <= 4; i++ {
			check(word.SetValue(dataKey+`\MRU`, fmt.Sprintf("Item %d", i),
				registry.String(fmt.Sprintf("draft-%d-%d.docx", day, i)), t))
		}
	}
	// Day 6: the user shrinks the list; Word updates Max Display AND
	// deletes the extra items together — the Fig 1a dependency.
	t = base.Add(6 * 24 * time.Hour)
	check(word.SetValue(dataKey+`\Settings`, "Max Display", registry.DWordValue(2), t))
	check(word.DeleteValue(dataKey+`\MRU`, "Item 3", t))
	check(word.DeleteValue(dataKey+`\MRU`, "Item 4", t))

	tr := logger.Trace()
	fmt.Printf("recorded %d registry events into the TTKV (%d keys)\n\n",
		len(tr.Events), store.Len())

	show := func(title string, cfg ocasta.Config) {
		clusters := ocasta.ClusterTrace(tr, "msword", cfg)
		fmt.Println(title)
		for _, c := range ocasta.MultiKey(clusters) {
			fmt.Printf("  cluster of %d: %v\n", c.Size(), c.Keys)
		}
		for _, c := range clusters {
			if c.Size() == 1 && c.Keys[0] == dataKey+`\Settings\Max Display` {
				fmt.Printf("  singleton: %v  <- split from its items\n", c.Keys)
			}
		}
		fmt.Println()
	}

	show("default parameters (window 1s, threshold 2):", ocasta.Config{})
	show("error-#2 tuning (window 30s, threshold 1):", ocasta.Config{
		Window: 30 * time.Second, Threshold: 1,
	})
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
