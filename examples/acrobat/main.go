// acrobat runs the paper's error #15 against the application-file logger:
// Acrobat Reader's menu bar disappears for certain PDF documents because a
// PostScript-style preference was corrupted. The configuration lives in a
// whole file that the application rewrites on every change; Ocasta infers
// per-key history by diffing consecutive flushes.
package main

import (
	"fmt"
	"time"

	"ocasta"
	"ocasta/internal/conffile"
	"ocasta/internal/vfs"
)

const prefsPath = "/home/user/.adobe/Acrobat/9.0/Preferences/reader_prefs"

func main() {
	base := time.Date(2013, 6, 1, 9, 0, 0, 0, time.UTC)
	store := ocasta.NewStore()
	logger := ocasta.NewLogger(store)

	fs := vfs.New()
	fl := logger.NewFileLogger(fs, map[string]ocasta.FileSpec{
		prefsPath: {App: "acrobat", Format: conffile.PostScript{}},
	})
	defer fl.Close()

	// Acrobat flushes its whole preference file after each change.
	flush := func(t time.Time, menuBar bool, zoom int) {
		content := fmt.Sprintf("/Originals << /ShowMenuBar %v >>\n/Zoom %d\n", menuBar, zoom)
		check(fs.WriteFile(prefsPath, []byte(content), t))
	}
	flush(base, true, 100)
	flush(base.Add(24*time.Hour), true, 125)
	flush(base.Add(48*time.Hour), true, 150)
	// The corruption: ShowMenuBar flips to false.
	errAt := base.Add(20 * 24 * time.Hour)
	flush(errAt, false, 150)

	menuKey := prefsPath + ":/Originals/ShowMenuBar"
	hist, err := store.History(menuKey)
	check(err)
	fmt.Printf("TTKV history of %s (%d versions, inferred from file diffs):\n", menuKey, len(hist))
	for _, v := range hist {
		fmt.Printf("  %s -> %q\n", v.Time.Format("2006-01-02"), v.Value)
	}

	model := ocasta.AppModelByName("acrobat")
	trial := []string{"launch", "open-fullscreen.pdf"}
	tool := ocasta.NewRepairTool(store, model)
	res, err := tool.Search(ocasta.RepairOptions{
		Trial:  trial,
		Oracle: ocasta.MarkerOracle("[x] menu-bar", "[ ] menu-bar"),
	})
	check(err)
	if !res.Found {
		panic("repair failed")
	}
	fmt.Printf("\nfix found after %d trials; offending cluster %v\n", res.Trials, res.Offending.Keys)
	for _, s := range res.Screenshots {
		fmt.Printf("--- screenshot (trial %d) ---\n%s", s.Trial, s.Rendered)
	}
	check(tool.ApplyFix(res, errAt.Add(time.Hour)))
	if v, ok := store.Get(menuKey); ok {
		fmt.Printf("\nrepaired value: %s = %q\n", menuKey, v)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
