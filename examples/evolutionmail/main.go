// evolutionmail runs the paper's error #8 end to end: Evolution Mail
// unexpectedly starts in offline mode. The example records GConf traffic
// through the interposition logger, injects the misconfiguration, searches
// the TTKV history for the fix, and applies the rollback permanently.
package main

import (
	"fmt"
	"time"

	"ocasta"
	"ocasta/internal/gconf"
)

func main() {
	base := time.Date(2013, 6, 1, 9, 0, 0, 0, time.UTC)
	store := ocasta.NewStore()
	logger := ocasta.NewLogger(store)

	db := gconf.New()
	detach := db.Attach(logger.GConfHook())
	defer detach()
	evo := db.Client("evolution")

	const offline = "/apps/evolution/shell/start_offline"
	const sync = "/apps/evolution/shell/offline_sync"

	// Normal usage: the user toggles the offline preferences a few times;
	// Evolution persists the dialog pair together.
	for day := 0; day < 4; day++ {
		t := base.Add(time.Duration(day) * 24 * time.Hour)
		check(evo.SetBool(offline, false, t))
		check(evo.SetBool(sync, day%2 == 0, t))
	}
	// Two weeks later something leaves start_offline stuck on — the error.
	errAt := base.Add(18 * 24 * time.Hour)
	check(evo.SetBool(offline, true, errAt))
	check(evo.SetBool(sync, true, errAt))

	model := ocasta.AppModelByName("evolution")
	broken := model.Render(snapshot(store, model), []string{"launch"})
	fmt.Println("the user sees:")
	fmt.Print(broken)

	tool := ocasta.NewRepairTool(store, model)
	res, err := tool.Search(ocasta.RepairOptions{
		Strategy: ocasta.StrategyDFS,
		Trial:    []string{"launch"},
		Oracle:   ocasta.MarkerOracle("[x] online-mode", "[ ] online-mode"),
	})
	check(err)
	if !res.Found {
		panic("repair failed")
	}
	fmt.Printf("\nfix found after %d trials (simulated %s):\n", res.Trials, res.SimTime)
	fmt.Printf("  offending cluster: %v\n", res.Offending.Keys)
	fmt.Printf("  rolled back to state at %s\n", res.FixAt.Format(time.RFC3339))

	check(tool.ApplyFix(res, errAt.Add(time.Hour)))
	fmt.Println("\nafter the permanent rollback:")
	fmt.Print(model.Render(snapshot(store, model), []string{"launch"}))
}

// snapshot pulls the app's current configuration from the TTKV.
func snapshot(store *ocasta.Store, model *ocasta.AppModel) ocasta.AppConfig {
	cfg := make(ocasta.AppConfig)
	for _, k := range store.Keys() {
		if model.OwnsKey(k) {
			if v, ok := store.Get(k); ok {
				cfg[k] = v
			}
		}
	}
	return cfg
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
