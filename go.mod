module ocasta

go 1.24
